//! Figure 6a — Parallel & disk-based sketch-time breakdown.
//!
//! Setup (paper §4.3): Berkeley-Earth-like gridded data, basic window B=120,
//! query window 960; the number of time-series is swept. Computation workers
//! sketch pair partitions while one database worker persists the records;
//! the figure separates sketch-computation time from database-write time.
//!
//! Expected shape (paper): TSUBASA's sketch computation is cheaper than the
//! DFT comparator's (linear vs quadratic in B per window); for TSUBASA a
//! large share of the total is the database write; both grow quadratically
//! with the number of series.

use std::sync::Arc;

use tsubasa_bench::{fmt_ms, millis, scaled, workers, Table};
use tsubasa_data::prelude::*;
use tsubasa_parallel::{ParallelConfig, ParallelEngine, SketchMethod};
use tsubasa_storage::{DiskSketchStore, PileWriter, SketchStore};

fn main() {
    let basic_window = 120;
    let points = 960;
    let workers = workers();
    let sweep: Vec<usize> = [100usize, 200, 400]
        .iter()
        .map(|&n| scaled(n, 24))
        .collect();
    println!(
        "Figure 6a: parallel sketch breakdown | B={basic_window} | {points} points | {workers} computation workers + 1 db worker"
    );

    let mut table = Table::new(&["series", "method", "sketch calc (sum)", "db write", "wall"]);
    let mut json_rows = Vec::new();

    for &n in &sweep {
        let collection = generate_berkeley_like(&BerkeleyLikeConfig {
            cells: n,
            points,
            ..BerkeleyLikeConfig::default()
        })
        .expect("generate dataset");
        let layout = ParallelEngine::layout_for(&collection, basic_window).unwrap();

        for (label, method) in [
            ("TSUBASA", SketchMethod::Exact),
            (
                "DFT 75%",
                SketchMethod::Dft {
                    coefficients: basic_window * 3 / 4,
                },
            ),
        ] {
            let dir = std::env::temp_dir()
                .join(format!("tsubasa-fig6a-{}-{n}-{label}", std::process::id()));
            let store: Arc<dyn SketchStore> =
                Arc::new(DiskSketchStore::create(&dir, layout).unwrap());
            let engine = ParallelEngine::new(ParallelConfig {
                workers,
                batch_pairs: tsubasa_storage::default_batch_pairs(),
                sketch_method: method,
                audit_pruned_chunks: false,
            });
            let report = engine
                .sketch_to_store(&collection, basic_window, store.clone())
                .unwrap();
            table.row(vec![
                n.to_string(),
                label.to_string(),
                fmt_ms(millis(report.compute_time)),
                fmt_ms(millis(report.write_time)),
                fmt_ms(millis(report.wall_time)),
            ]);
            json_rows.push(serde_json::json!({
                "series": n,
                "method": label,
                "compute_ms": millis(report.compute_time),
                "write_ms": millis(report.write_time),
                "wall_ms": millis(report.wall_time),
                "pairs": report.pairs,
            }));
            std::fs::remove_dir_all(&dir).ok();
        }

        // Pile backend: identical exact sketch computation, but the database
        // worker appends coalesced window-major slabs to the single-file
        // pile instead of per-record batches (see `fig_pile` for the query
        // side).
        let path =
            std::env::temp_dir().join(format!("tsubasa-fig6a-pile-{}-{n}", std::process::id()));
        let engine = ParallelEngine::new(ParallelConfig {
            workers,
            batch_pairs: tsubasa_storage::default_batch_pairs(),
            sketch_method: SketchMethod::Exact,
            audit_pruned_chunks: false,
        });
        let writer = PileWriter::create(&path, n, basic_window).unwrap();
        let (report, _pile) = engine
            .sketch_to_pile(&collection, basic_window, writer)
            .unwrap();
        table.row(vec![
            n.to_string(),
            "TSUBASA pile".to_string(),
            fmt_ms(millis(report.compute_time)),
            fmt_ms(millis(report.write_time)),
            fmt_ms(millis(report.wall_time)),
        ]);
        json_rows.push(serde_json::json!({
            "series": n,
            "method": "TSUBASA pile",
            "compute_ms": millis(report.compute_time),
            "write_ms": millis(report.write_time),
            "wall_ms": millis(report.wall_time),
            "pairs": report.pairs,
        }));
        std::fs::remove_file(&path).ok();
    }

    table.print("Figure 6a: sketch-time breakdown vs number of series");
    tsubasa_bench::write_json(
        "fig6a_sketch_scale",
        &serde_json::json!({
            "basic_window": basic_window,
            "points": points,
            "workers": workers,
            "db_batch_pairs": tsubasa_storage::default_batch_pairs(),
            "rows": json_rows,
        }),
    );
}
