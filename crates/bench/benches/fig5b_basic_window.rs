//! Figure 5b — Basic-window size analysis (in-memory).
//!
//! Setup (paper §4.2): query window of 3,000 points; the basic-window size is
//! swept while measuring sketch time and query time for TSUBASA and for the
//! DFT approximation (with all coefficients and with 75% of them).
//!
//! Expected shape (paper): TSUBASA's sketch time grows only gently with B,
//! while the approximation's sketch time *increases* with B because of the
//! O(B²) DFT per basic window; query times of the two are on par.

use tsubasa_bench::{fmt_ms, millis, scaled, time, workers, Table};
use tsubasa_core::prelude::*;
use tsubasa_data::prelude::*;
use tsubasa_dft::approx::{approximate_correlation_matrix, ApproxStrategy};
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_parallel::WorkerPool;

/// Mean wall time of `reps` back-to-back runs (first run included, so the
/// single-shot numbers of earlier snapshots remain comparable while the mean
/// damps sub-millisecond timer noise).
fn time_avg<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let (out, first) = time(&mut f);
    let mut total = millis(first);
    for _ in 1..reps {
        let (_, t) = time(&mut f);
        total += millis(t);
    }
    (out, total / reps as f64)
}

fn main() {
    let stations = scaled(60, 16);
    let points = scaled(8_760, 3_500).max(3_500);
    let query_len = 3_000;
    let query_reps = 5;
    println!("Figure 5b: basic-window sweep | {stations} stations x {points} points | query window {query_len}");

    let collection = generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        ..NceaLikeConfig::default()
    })
    .expect("generate dataset");

    let mut table = Table::new(&[
        "B",
        "TSUBASA sketch",
        "DFT sketch (100%)",
        "DFT sketch (75%)",
        "TSUBASA query",
        "TSUBASA query (par)",
        "DFT query",
    ]);
    let mut json_rows = Vec::new();
    let query_workers = workers();
    // One pool reused by every parallel query of the sweep — repeated
    // queries stop paying per-call thread startup.
    let pool = WorkerPool::new(query_workers);

    for basic_window in [50usize, 100, 200, 300, 500] {
        // --- sketch times ---------------------------------------------------
        // First run single-shot (comparable with older snapshots of this
        // file), then best-of-3 — single-shot numbers on shared hardware
        // swing by 2×, and the best-of is the honest kernel cost.
        let (exact_sketch, t_exact_sketch) =
            time(|| SketchSet::build(&collection, basic_window).unwrap());
        let best_exact_sketch = (0..2)
            .map(|_| millis(time(|| SketchSet::build(&collection, basic_window).unwrap()).1))
            .fold(millis(t_exact_sketch), f64::min);
        // The scalar reference sketch (the pre-tiling arithmetic, kept as the
        // equivalence yardstick) measured in the same process: an
        // apples-to-apples view of what the tiled kernel buys.
        let best_reference_sketch = (0..3)
            .map(|_| {
                millis(time(|| SketchSet::build_reference(&collection, basic_window).unwrap()).1)
            })
            .fold(f64::INFINITY, f64::min);
        let (_, t_dft_full) = time(|| {
            DftSketchSet::build(&collection, basic_window, basic_window, Transform::Naive).unwrap()
        });
        let (dft75, t_dft_75) = time(|| {
            DftSketchSet::build(
                &collection,
                basic_window,
                basic_window * 3 / 4,
                Transform::Naive,
            )
            .unwrap()
        });

        // --- query times on a window of `query_len` points ------------------
        let ns = query_len / basic_window;
        let last = exact_sketch.window_count();
        let windows = last - ns..last;
        let query = QueryWindow::new(last * basic_window - 1, query_len).unwrap();
        let (_, t_exact_query) =
            time(|| exact::correlation_matrix(&collection, &exact_sketch, query).unwrap());
        let (_, avg_exact_query) = time_avg(query_reps, || {
            exact::correlation_matrix(&collection, &exact_sketch, query).unwrap()
        });
        let (_, t_exact_query_par) = time(|| {
            exact::correlation_matrix_parallel_in(&pool, &collection, &exact_sketch, query).unwrap()
        });
        let (_, avg_exact_query_par) = time_avg(query_reps, || {
            exact::correlation_matrix_parallel_in(&pool, &collection, &exact_sketch, query).unwrap()
        });
        // Scalar reference query: the shared plan evaluated pair by pair with
        // the bit-exact scalar kernel — exactly the pre-tiling all-pairs
        // sweep, same process and methodology as the tiled numbers above.
        let (_, avg_reference_query) = time_avg(query_reps, || {
            let plan =
                tsubasa_core::plan::QueryPlan::build(&collection, &exact_sketch, query).unwrap();
            let corrs: Vec<f64> = collection
                .pairs()
                .map(|(i, j)| {
                    plan.pair_correlation(&collection, &exact_sketch, i, j)
                        .unwrap()
                })
                .collect();
            corrs
        });
        let (_, t_dft_query) = time(|| {
            approximate_correlation_matrix(&dft75, windows.clone(), ApproxStrategy::Equation5)
                .unwrap()
        });

        table.row(vec![
            basic_window.to_string(),
            fmt_ms(millis(t_exact_sketch)),
            fmt_ms(millis(t_dft_full)),
            fmt_ms(millis(t_dft_75)),
            fmt_ms(millis(t_exact_query)),
            fmt_ms(millis(t_exact_query_par)),
            fmt_ms(millis(t_dft_query)),
        ]);
        json_rows.push(serde_json::json!({
            "basic_window": basic_window,
            "tsubasa_sketch_ms": millis(t_exact_sketch),
            "tsubasa_sketch_ms_best": best_exact_sketch,
            "tsubasa_sketch_ms_reference_best": best_reference_sketch,
            "dft_sketch_full_ms": millis(t_dft_full),
            "dft_sketch_75_ms": millis(t_dft_75),
            "tsubasa_query_ms": millis(t_exact_query),
            "tsubasa_query_ms_avg": avg_exact_query,
            "tsubasa_query_ms_reference_avg": avg_reference_query,
            "tsubasa_query_parallel_ms": millis(t_exact_query_par),
            "tsubasa_query_parallel_ms_avg": avg_exact_query_par,
            "query_reps": query_reps,
            "query_workers": query_workers,
            "dft_query_ms": millis(t_dft_query),
        }));
    }

    table.print("Figure 5b: sketch & query time vs basic-window size");
    tsubasa_bench::write_json(
        "fig5b_basic_window",
        &serde_json::json!({
            "stations": stations,
            "points": points,
            "query_len": query_len,
            "rows": json_rows,
        }),
    );
}
