//! Figure 5d — Real-time network update time.
//!
//! Setup (paper §4.2): query window of 3,000 points; after the initial
//! network is built, `B` new data points arrive and both algorithms update
//! their correlation matrix incrementally — TSUBASA via Lemma 2, the DFT
//! approximation via Equation 6 with 75% of the coefficients. The basic
//! window size is swept.
//!
//! Expected shape (paper): TSUBASA is at least an order of magnitude faster,
//! and the gap widens with B because the approximation must compute O(B²)
//! DFT coefficients for every arriving basic window.

use tsubasa_bench::{fmt_ms, millis, scaled, time, Table};
use tsubasa_core::prelude::*;
use tsubasa_data::prelude::*;
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_dft::SlidingApproxNetwork;

fn main() {
    let stations = scaled(40, 12);
    let query_len = 3_000;
    let updates = 4; // average the update time over this many arriving windows
    let max_b = 500;
    let history = query_len + 1_000;
    let points = history + updates * max_b;
    println!(
        "Figure 5d: update-time sweep | {stations} stations | query window {query_len} | {updates} updates averaged"
    );

    let world = generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        ..NceaLikeConfig::default()
    })
    .expect("generate dataset");
    let historical = world.truncate_length(history).unwrap();

    let mut table = Table::new(&["B", "TSUBASA update", "DFT update (75%)", "slowdown"]);
    let mut json_rows = Vec::new();

    for basic_window in [50usize, 100, 200, 300, 500] {
        // Bootstrap both engines on the most recent `query_len` points of the
        // historical prefix (query_len is a multiple of every swept B).
        let exact_sketch = SketchSet::build(&historical, basic_window).unwrap();
        let mut exact_net =
            SlidingNetwork::initialize(&historical, &exact_sketch, query_len).unwrap();
        let dft_sketch = DftSketchSet::build(
            &historical,
            basic_window,
            basic_window * 3 / 4,
            Transform::Naive,
        )
        .unwrap();
        let mut approx_net = SlidingApproxNetwork::initialize(&dft_sketch, query_len).unwrap();

        let mut exact_total = 0.0;
        let mut approx_total = 0.0;
        for u in 0..updates {
            let lo = history + u * basic_window;
            let chunk: Vec<Vec<f64>> = world
                .iter()
                .map(|s| s.values()[lo..lo + basic_window].to_vec())
                .collect();
            let (_, t_exact) = time(|| exact_net.ingest(&chunk).unwrap());
            let (_, t_approx) = time(|| approx_net.ingest(&chunk).unwrap());
            exact_total += millis(t_exact);
            approx_total += millis(t_approx);
        }
        let exact_avg = exact_total / updates as f64;
        let approx_avg = approx_total / updates as f64;

        table.row(vec![
            basic_window.to_string(),
            fmt_ms(exact_avg),
            fmt_ms(approx_avg),
            format!("{:.1}x", approx_avg / exact_avg.max(1e-9)),
        ]);
        json_rows.push(serde_json::json!({
            "basic_window": basic_window,
            "tsubasa_update_ms": exact_avg,
            "dft_update_ms": approx_avg,
            "slowdown": approx_avg / exact_avg.max(1e-9),
        }));
    }

    table.print("Figure 5d: network update time vs basic-window size");
    tsubasa_bench::write_json(
        "fig5d_update",
        &serde_json::json!({
            "stations": stations,
            "query_len": query_len,
            "updates_averaged": updates,
            "rows": json_rows,
        }),
    );
}
