//! Criterion micro-benchmarks and ablations for the core primitives:
//!
//! * `pearson_direct` vs `sketch_pair` — the fused one-pass sketch kernel;
//! * `lemma1_combine` — recombination cost per pair per query;
//! * `lemma2_update` — the per-pair incremental update (the reason real-time
//!   TSUBASA is so cheap);
//! * `naive_dft` vs `radix2_fft` — how much of the comparator's overhead is
//!   the transform itself (ablation called out in DESIGN.md);
//! * `query_aligned` vs `query_unaligned` — the extra cost of arbitrary query
//!   windows (partial head/tail re-sketching, §3.3 usability discussion);
//! * `pair_sketch_vs_raw` — sketch-based pair correlation vs rescanning raw
//!   data (the fundamental trade the paper makes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tsubasa_core::exact::{self, WindowContribution};
use tsubasa_core::incremental::lemma2_update;
use tsubasa_core::prelude::*;
use tsubasa_core::stats::{pearson, sketch_pair};
use tsubasa_data::prelude::*;
use tsubasa_dft::dft::{naive_dft, radix2_fft};

fn series(seed: u64, len: usize) -> Vec<f64> {
    let mut ar = Ar1::new(0.9, 1.0, seed);
    let base = ar.generate(len);
    base.iter()
        .enumerate()
        .map(|(i, v)| v + (i as f64 * 0.01).sin() * 3.0)
        .collect()
}

fn bench_pair_kernels(c: &mut Criterion) {
    let x = series(1, 1_000);
    let y = series(2, 1_000);
    let mut group = c.benchmark_group("pair_kernels");
    group.sample_size(30);
    group.bench_function("pearson_direct_1000", |b| {
        b.iter(|| black_box(pearson(black_box(&x), black_box(&y))))
    });
    group.bench_function("sketch_pair_fused_1000", |b| {
        b.iter(|| black_box(sketch_pair(black_box(&x), black_box(&y))))
    });
    group.finish();
}

fn bench_lemma1_and_lemma2(c: &mut Criterion) {
    let x = series(3, 3_000);
    let y = series(4, 3_000);
    let b_size = 100;
    let parts: Vec<WindowContribution> = (0..30)
        .map(|w| {
            WindowContribution::from_raw(
                &x[w * b_size..(w + 1) * b_size],
                &y[w * b_size..(w + 1) * b_size],
            )
        })
        .collect();
    let mut group = c.benchmark_group("recombination");
    group.sample_size(50);
    group.bench_function("lemma1_combine_30_windows", |b| {
        b.iter(|| black_box(exact::combine(black_box(&parts))))
    });

    let evicted = parts[0];
    let arriving = parts[29];
    group.bench_function("lemma2_update_single_pair", |b| {
        b.iter(|| {
            black_box(lemma2_update(
                3_000.0,
                black_box(0.1),
                black_box(-0.05),
                black_box(2.0),
                black_box(1.8),
                black_box(0.4),
                black_box(&evicted),
                black_box(&arriving),
            ))
        })
    });
    group.finish();
}

fn bench_dft_vs_fft(c: &mut Criterion) {
    let window = series(5, 256);
    let mut group = c.benchmark_group("transform_ablation");
    group.sample_size(30);
    group.bench_function("naive_dft_256", |b| {
        b.iter(|| black_box(naive_dft(black_box(&window))))
    });
    group.bench_function("radix2_fft_256", |b| {
        b.iter(|| black_box(radix2_fft(black_box(&window))))
    });
    group.finish();
}

fn bench_query_paths(c: &mut Criterion) {
    let collection = generate_ncea_like(&NceaLikeConfig {
        stations: 20,
        points: 4_000,
        missing_fraction: 0.0,
        ..NceaLikeConfig::default()
    })
    .unwrap();
    let sketch = SketchSet::build(&collection, 100).unwrap();
    let aligned = QueryWindow::new(3_999, 3_000).unwrap();
    let unaligned = QueryWindow::new(3_950, 3_000).unwrap();

    let mut group = c.benchmark_group("query_paths");
    group.sample_size(20);
    group.bench_function("matrix_query_aligned", |b| {
        b.iter(|| black_box(exact::correlation_matrix(&collection, &sketch, aligned).unwrap()))
    });
    group.bench_function("matrix_query_unaligned", |b| {
        b.iter(|| black_box(exact::correlation_matrix(&collection, &sketch, unaligned).unwrap()))
    });
    group.bench_function("matrix_query_baseline_raw", |b| {
        b.iter(|| black_box(baseline::correlation_matrix(&collection, aligned).unwrap()))
    });
    group.finish();
}

fn bench_streaming_update(c: &mut Criterion) {
    let collection = generate_ncea_like(&NceaLikeConfig {
        stations: 20,
        points: 4_000,
        missing_fraction: 0.0,
        ..NceaLikeConfig::default()
    })
    .unwrap();
    let sketch = SketchSet::build(&collection, 100).unwrap();
    let chunk: Vec<Vec<f64>> = collection
        .iter()
        .map(|s| s.values()[3_900..4_000].to_vec())
        .collect();

    let mut group = c.benchmark_group("streaming");
    group.sample_size(20);
    group.bench_function("sliding_network_ingest_20x100", |b| {
        b.iter_batched(
            || SlidingNetwork::initialize(&collection, &sketch, 3_000).unwrap(),
            |mut net| {
                net.ingest(black_box(&chunk)).unwrap();
                black_box(net)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pair_kernels,
    bench_lemma1_and_lemma2,
    bench_dft_vs_fft,
    bench_query_paths,
    bench_streaming_update
);
criterion_main!(benches);
