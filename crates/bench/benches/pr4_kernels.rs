//! Tiled-kernel microbenchmark: the batch sketch and query kernels against
//! their scalar reference paths, same process, same data, repeated runs.
//!
//! The fig5b harness measures end-to-end figures (including the slow DFT
//! comparator sweeps); this target isolates the PR 4 kernels so the
//! tiled-vs-scalar speedup can be measured quickly and with less noise:
//!
//! * sketch: `SketchSet::build` (window-major z-rows + `Z·Zᵀ` tiles) vs
//!   `SketchSet::build_reference` (per-pair centered cross-products);
//! * query: `exact::correlation_matrix` (`block_kernel` over the window-major
//!   correlation table) vs the scalar plan kernel looped pair by pair —
//!   exactly the pre-tiling all-pairs sweep.
//!
//! Results land in `target/bench-results/pr4_kernels.json`.

use tsubasa_bench::{fmt_ms, millis, scaled, time, Table};
use tsubasa_core::plan::QueryPlan;
use tsubasa_core::prelude::*;
use tsubasa_data::prelude::*;

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..reps)
        .map(|_| millis(time(&mut f).1))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let stations = scaled(60, 16);
    let points = scaled(8_760, 3_500).max(3_500);
    let query_len = 3_000;
    let reps = 5;
    println!(
        "PR4 kernel micro: {stations} stations x {points} points | query window {query_len} | best of {reps}"
    );

    let collection = generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        ..NceaLikeConfig::default()
    })
    .expect("generate dataset");

    let mut table = Table::new(&[
        "B",
        "sketch tiled",
        "sketch scalar",
        "x",
        "query tiled",
        "query scalar",
        "x",
    ]);
    let mut json_rows = Vec::new();

    for basic_window in [50usize, 100, 200, 300, 500] {
        let sketch_tiled = best_of(reps, || {
            SketchSet::build(&collection, basic_window).unwrap()
        });
        let sketch_scalar = best_of(reps, || {
            SketchSet::build_reference(&collection, basic_window).unwrap()
        });

        let sketch = SketchSet::build(&collection, basic_window).unwrap();
        let last = sketch.window_count();
        let query = QueryWindow::new(last * basic_window - 1, query_len).unwrap();

        let query_tiled = best_of(reps, || {
            exact::correlation_matrix(&collection, &sketch, query).unwrap()
        });
        let query_scalar = best_of(reps, || {
            let plan = QueryPlan::build(&collection, &sketch, query).unwrap();
            collection
                .pairs()
                .map(|(i, j)| plan.pair_correlation(&collection, &sketch, i, j).unwrap())
                .collect::<Vec<f64>>()
        });

        table.row(vec![
            basic_window.to_string(),
            fmt_ms(sketch_tiled),
            fmt_ms(sketch_scalar),
            format!("{:.2}", sketch_scalar / sketch_tiled),
            fmt_ms(query_tiled),
            fmt_ms(query_scalar),
            format!("{:.2}", query_scalar / query_tiled),
        ]);
        json_rows.push(serde_json::json!({
            "basic_window": basic_window,
            "sketch_tiled_ms": sketch_tiled,
            "sketch_scalar_ms": sketch_scalar,
            "sketch_speedup": sketch_scalar / sketch_tiled,
            "query_tiled_ms": query_tiled,
            "query_scalar_ms": query_scalar,
            "query_speedup": query_scalar / query_tiled,
        }));
    }

    table.print("PR4 tiled kernels vs scalar reference (best-of runs)");
    tsubasa_bench::write_json(
        "pr4_kernels",
        &serde_json::json!({
            "stations": stations,
            "points": points,
            "query_len": query_len,
            "reps": reps,
            "rows": json_rows,
        }),
    );
}
