//! Pile benchmark — the memory-mapped append-only sketch pile vs the
//! record store.
//!
//! The record store serializes one fixed-size record per `(pair, window)`
//! and the query path decodes them back into `PairWindowRecord` vectors
//! chunk by chunk. The pile stores the same correlations as window-major
//! `f64` tables in the exact layout `block_kernel` consumes, so the query
//! path maps the file and hands the kernel zero-copy `CorrView` borrows —
//! no per-record deserialization, no record vectors.
//!
//! This bench pins three facts with a counting global allocator (the
//! `fig6b_streamed` pattern):
//!
//! * sketch-write throughput: the pile's coalesced window-major appends vs
//!   the record store's batched record writes;
//! * query-path allocation: a pile-backed network query's peak extra
//!   allocation stays **below the size of the record table the store path
//!   decodes** — direct evidence that no per-record materialization happens;
//! * out-of-core queries: with `TSUBASA_DENSE_LIMIT_BYTES` set below the
//!   dense matrix requirement, the dense query fails fast with `TooLarge`
//!   while the streamed pile network/top-k queries complete against the
//!   same mapped file.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tsubasa_bench::{fmt_ms, millis, scaled, workers, Table};
use tsubasa_core::error::Error;
use tsubasa_data::prelude::*;
use tsubasa_parallel::{ParallelConfig, ParallelEngine, QueryMethod, SketchMethod};
use tsubasa_storage::{
    DiskSketchStore, PairWindowRecord, PileWriter, SegmentKind, SketchPile, SketchStore,
};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn bump(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            bump(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                bump(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[allow(unsafe_code)]
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

fn peak_extra(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

fn fmt_bytes(b: u128) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}

fn main() {
    let basic_window = 120;
    let points = 960;
    let windows = points / basic_window;
    let theta = 0.7;
    let k = 50;
    let workers = workers();
    let sweep: Vec<usize> = [100usize, 200, 400]
        .iter()
        .map(|&n| scaled(n, 24))
        .collect();

    println!(
        "Pile benchmark: mapped window-major pile vs record store | B={basic_window} | \
         {points} points | theta={theta} | k={k} | {workers} workers"
    );

    let engine = ParallelEngine::new(ParallelConfig {
        workers,
        batch_pairs: 256,
        sketch_method: SketchMethod::Exact,
        audit_pruned_chunks: false,
    });

    let mut table = Table::new(&[
        "series",
        "backend",
        "sketch wall",
        "db write",
        "net wall",
        "net peak alloc",
        "record table",
        "zero-copy",
    ]);
    let mut json_rows = Vec::new();
    let mut last_pile_path = None;

    for &n in &sweep {
        let collection = generate_berkeley_like(&BerkeleyLikeConfig {
            cells: n,
            points,
            ..BerkeleyLikeConfig::default()
        })
        .expect("generate dataset");
        let layout = ParallelEngine::layout_for(&collection, basic_window).unwrap();
        let pairs = n * (n - 1) / 2;
        // What the record-store query path decodes, and the pile path never
        // materializes: one PairWindowRecord per (pair, window).
        let record_table_bytes = pairs * windows * std::mem::size_of::<PairWindowRecord>();

        // --- Record store ------------------------------------------------
        let dir = std::env::temp_dir().join(format!("tsubasa-figpile-{}-{n}", std::process::id()));
        let store: Arc<dyn SketchStore> = Arc::new(DiskSketchStore::create(&dir, layout).unwrap());
        let store_report = engine
            .sketch_to_store(&collection, basic_window, store.clone())
            .unwrap();
        let base = reset_peak();
        let t = Instant::now();
        let (net_store, _) = engine
            .network_from_store(store.clone(), 0..windows, QueryMethod::Exact, theta)
            .unwrap();
        let store_net_wall = t.elapsed();
        let store_peak = peak_extra(base);
        table.row(vec![
            n.to_string(),
            "record".to_string(),
            fmt_ms(millis(store_report.wall_time)),
            fmt_ms(millis(store_report.write_time)),
            fmt_ms(millis(store_net_wall)),
            fmt_bytes(store_peak as u128),
            fmt_bytes(record_table_bytes as u128),
            "-".to_string(),
        ]);

        // --- Pile --------------------------------------------------------
        let path =
            std::env::temp_dir().join(format!("tsubasa-figpile-{}-{n}.pile", std::process::id()));
        let writer = PileWriter::create(&path, n, basic_window).unwrap();
        let (pile_report, pile) = engine
            .sketch_to_pile(&collection, basic_window, writer)
            .unwrap();
        drop(pile);
        // Compaction coalesces the append log into one segment per kind, so
        // the full query range is served from a single zero-copy borrow.
        SketchPile::compact(&path).unwrap();
        let pile = SketchPile::open(&path).unwrap();
        let zero_copy = pile
            .pair_table(0..windows, SegmentKind::PairCorrs)
            .unwrap()
            .is_zero_copy();
        assert!(
            zero_copy,
            "a compacted pile must serve full ranges zero-copy"
        );

        let base = reset_peak();
        let t = Instant::now();
        let (net_pile, _) = engine
            .network_from_pile(&pile, 0..windows, QueryMethod::Exact, theta)
            .unwrap();
        let pile_net_wall = t.elapsed();
        let pile_peak = peak_extra(base);
        assert_eq!(
            net_store.edges(),
            net_pile.edges(),
            "pile and record-store networks must agree bit-for-bit"
        );
        // The zero-deserialization claim, enforced: the whole pile query —
        // plan, bounds, sinks, tiles — allocates less than the record table
        // the store path decodes chunk by chunk.
        assert!(
            pile_peak < record_table_bytes,
            "pile network query allocated {pile_peak} B, record table is {record_table_bytes} B"
        );
        table.row(vec![
            n.to_string(),
            "pile".to_string(),
            fmt_ms(millis(pile_report.wall_time)),
            fmt_ms(millis(pile_report.write_time)),
            fmt_ms(millis(pile_net_wall)),
            fmt_bytes(pile_peak as u128),
            fmt_bytes(record_table_bytes as u128),
            if pile.is_mmap() { "mmap" } else { "fallback" }.to_string(),
        ]);

        json_rows.push(serde_json::json!({
            "series": n,
            "pairs": pairs,
            "windows": windows,
            "record_sketch_wall_ms": millis(store_report.wall_time),
            "record_write_ms": millis(store_report.write_time),
            "record_network_wall_ms": millis(store_net_wall),
            "record_network_peak_bytes": store_peak,
            "pile_sketch_wall_ms": millis(pile_report.wall_time),
            "pile_write_ms": millis(pile_report.write_time),
            "pile_network_wall_ms": millis(pile_net_wall),
            "pile_network_peak_bytes": pile_peak,
            "record_table_bytes": record_table_bytes,
            "pile_space_bytes": pile.space_bytes(),
            "pile_is_mmap": pile.is_mmap(),
            "edges": net_pile.edge_count(),
        }));

        std::fs::remove_dir_all(&dir).ok();
        if Some(n) == sweep.last().copied() {
            last_pile_path = Some(path);
        } else {
            std::fs::remove_file(&path).ok();
        }
    }

    table.print("Pile vs record store: sketch write + network query");

    // --- Out-of-core coda: query a pile past the dense budget -------------
    let path = last_pile_path.expect("at least one sweep point");
    let pile = SketchPile::open(&path).unwrap();
    let pairs = pile.pair_count();
    // The dense guard prices the all-pairs buffer (`pairs × 8` bytes); set
    // the budget strictly below it so the dense path must refuse while the
    // streamed pile sweeps — which never materialize that buffer — proceed.
    let dense_need = (pairs * 8) as u64;
    let dense_limit = (dense_need / 2).max(1);
    std::env::set_var("TSUBASA_DENSE_LIMIT_BYTES", dense_limit.to_string());

    let dense = engine.query_from_pile(&pile, 0..windows, QueryMethod::Exact);
    assert!(
        matches!(dense, Err(Error::TooLarge { .. })),
        "dense query must trip the budget guard"
    );
    let t = Instant::now();
    let (net, _) = engine
        .network_from_pile(&pile, 0..windows, QueryMethod::Exact, theta)
        .unwrap();
    let net_wall = t.elapsed();
    let t = Instant::now();
    let (top, _) = engine
        .top_k_from_pile(&pile, 0..windows, QueryMethod::Exact, k)
        .unwrap();
    let top_wall = t.elapsed();
    std::env::remove_var("TSUBASA_DENSE_LIMIT_BYTES");
    println!(
        "out-of-core @ N={}: dense needs {} (budget {}), TooLarge; streamed pile network {} \
         ({} edges), top-{k} {}",
        pile.n_series(),
        fmt_bytes(dense_need as u128),
        fmt_bytes(dense_limit as u128),
        fmt_ms(millis(net_wall)),
        net.edge_count(),
        fmt_ms(millis(top_wall)),
    );
    std::fs::remove_file(&path).ok();

    let out_of_core = serde_json::json!({
        "dense_required_bytes": dense_need,
        "dense_limit_bytes": dense_limit,
        "dense_too_large": true,
        "network_wall_ms": millis(net_wall),
        "network_edges": net.edge_count(),
        "top_k_wall_ms": millis(top_wall),
        "top_k_len": top.edges.len(),
    });
    tsubasa_bench::write_json(
        "fig_pile",
        &serde_json::json!({
            "basic_window": basic_window,
            "points": points,
            "theta": theta,
            "k": k,
            "workers": workers,
            "rows": json_rows,
            "out_of_core": out_of_core,
        }),
    );
}
