//! Figure 6d — Space overhead of the sketch store.
//!
//! Setup (paper §4.3): 2,000 series (scaled here), Berkeley-Earth-like length
//! of 3,652 points; the size of the sketch database is reported as the basic
//! window size grows, for TSUBASA and for the DFT approximation.
//!
//! Expected shape (paper): both algorithms store records of the same size per
//! basic window, so their space overhead is identical and shrinks inversely
//! with B (fewer windows to store).

use tsubasa_bench::{scaled, Table};
use tsubasa_data::prelude::*;
use tsubasa_parallel::ParallelEngine;
use tsubasa_storage::{
    DiskSketchStore, PairWindowRecord, SeriesWindowRecord, SketchStore, StoreLayout,
};

fn analytic_bytes(layout: StoreLayout) -> u64 {
    (layout.series_records() * SeriesWindowRecord::SIZE
        + layout.pair_records() * PairWindowRecord::SIZE) as u64
}

fn main() {
    let n = scaled(2_000, 200);
    let points = 3_652;
    println!("Figure 6d: sketch space overhead | {n} series x {points} points");

    let mut table = Table::new(&["B", "windows", "TSUBASA store (MiB)", "DFT store (MiB)"]);
    let mut json_rows = Vec::new();

    for basic_window in [60usize, 120, 240, 480, 960] {
        let layout = StoreLayout {
            n_series: n,
            n_windows: points / basic_window,
            basic_window,
        };
        // Both algorithms store one fixed-size record per pair per basic
        // window plus two statistics per series per basic window, so the
        // formula is the same for both (the paper's observation).
        let bytes = analytic_bytes(layout);
        let mib = bytes as f64 / (1024.0 * 1024.0);
        table.row(vec![
            basic_window.to_string(),
            layout.n_windows.to_string(),
            format!("{mib:.1}"),
            format!("{mib:.1}"),
        ]);
        json_rows.push(serde_json::json!({
            "basic_window": basic_window,
            "windows": layout.n_windows,
            "bytes": bytes,
            "mib": mib,
        }));
    }

    // Validate the analytic formula against an actual on-disk store at a
    // small scale (the big layouts above would needlessly allocate gigabytes
    // of sparse files).
    let small = generate_berkeley_like(&BerkeleyLikeConfig {
        cells: 40,
        points: 720,
        ..BerkeleyLikeConfig::default()
    })
    .unwrap();
    let layout = ParallelEngine::layout_for(&small, 120).unwrap();
    let dir = std::env::temp_dir().join(format!("tsubasa-fig6d-{}", std::process::id()));
    let store = DiskSketchStore::create(&dir, layout).unwrap();
    let actual = store.space_bytes();
    let predicted = analytic_bytes(layout);
    println!(
        "validation on a 40-series store: predicted {predicted} bytes, on-disk {actual} bytes"
    );
    assert_eq!(
        actual, predicted,
        "analytic space formula must match the real store"
    );
    std::fs::remove_dir_all(&dir).ok();

    table.print("Figure 6d: sketch-store size vs basic-window size");
    tsubasa_bench::write_json(
        "fig6d_space",
        &serde_json::json!({
            "series": n,
            "points": points,
            "rows": json_rows,
        }),
    );
}
