//! Figure 6b — Parallel & disk-based query-time breakdown.
//!
//! Setup (paper §4.3): same configuration as Figure 6a (B=120, query window
//! 960, 63+1 workers in the paper); after sketching into the disk store, the
//! correlation matrix is rebuilt from stored sketches. The figure separates
//! database-read time from matrix-calculation time.
//!
//! Expected shape (paper): read time is a small fraction of matrix
//! calculation; TSUBASA and the approximation have on-par query time; both
//! grow quadratically with the number of series.

use std::sync::Arc;

use tsubasa_bench::{fmt_ms, millis, scaled, workers, Table};
use tsubasa_data::prelude::*;
use tsubasa_parallel::{ParallelConfig, ParallelEngine, QueryMethod, SketchMethod};
use tsubasa_storage::{DiskSketchStore, SketchStore};

fn main() {
    let basic_window = 120;
    let points = 960;
    let workers = workers();
    let sweep: Vec<usize> = [100usize, 200, 400]
        .iter()
        .map(|&n| scaled(n, 24))
        .collect();
    println!(
        "Figure 6b: parallel query breakdown | B={basic_window} | query window {points} | {workers} workers + 1 db worker"
    );

    let mut table = Table::new(&["series", "method", "db read", "matrix calc", "wall"]);
    let mut json_rows = Vec::new();

    for &n in &sweep {
        let collection = generate_berkeley_like(&BerkeleyLikeConfig {
            cells: n,
            points,
            ..BerkeleyLikeConfig::default()
        })
        .expect("generate dataset");
        let layout = ParallelEngine::layout_for(&collection, basic_window).unwrap();

        for (label, sketch_method, query_method) in [
            ("TSUBASA", SketchMethod::Exact, QueryMethod::Exact),
            (
                "DFT 75%",
                SketchMethod::Dft {
                    coefficients: basic_window * 3 / 4,
                },
                QueryMethod::Approximate,
            ),
        ] {
            let dir = std::env::temp_dir()
                .join(format!("tsubasa-fig6b-{}-{n}-{label}", std::process::id()));
            let store: Arc<dyn SketchStore> =
                Arc::new(DiskSketchStore::create(&dir, layout).unwrap());
            let engine = ParallelEngine::new(ParallelConfig {
                workers,
                batch_pairs: 128,
                sketch_method,
                audit_pruned_chunks: false,
            });
            engine
                .sketch_to_store(&collection, basic_window, store.clone())
                .unwrap();
            let (_, report) = engine
                .query_from_store(store, 0..layout.n_windows, query_method)
                .unwrap();
            table.row(vec![
                n.to_string(),
                label.to_string(),
                fmt_ms(millis(report.read_time)),
                fmt_ms(millis(report.compute_time)),
                fmt_ms(millis(report.wall_time)),
            ]);
            json_rows.push(serde_json::json!({
                "series": n,
                "method": label,
                "read_ms": millis(report.read_time),
                "compute_ms": millis(report.compute_time),
                "wall_ms": millis(report.wall_time),
            }));
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    table.print("Figure 6b: query-time breakdown vs number of series");
    tsubasa_bench::write_json(
        "fig6b_query_scale",
        &serde_json::json!({
            "basic_window": basic_window,
            "query_window": points,
            "workers": workers,
            "rows": json_rows,
        }),
    );
}
