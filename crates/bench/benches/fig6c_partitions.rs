//! Figure 6c — Impact of the number of partitions / cores.
//!
//! Setup (paper §4.3): a fixed number of series (2,000 in the paper, scaled
//! here); the number of partitions (= computation workers) is swept while the
//! sketch-computation and matrix-calculation wall times are measured.
//!
//! Expected shape (paper): both wall times fall as the partition count grows,
//! with diminishing returns once the machine's cores are saturated.

use std::sync::Arc;

use tsubasa_bench::{fmt_ms, millis, scaled, Table};
use tsubasa_data::prelude::*;
use tsubasa_parallel::{ParallelConfig, ParallelEngine, QueryMethod, SketchMethod};
use tsubasa_storage::{DiskSketchStore, SketchStore};

fn main() {
    let basic_window = 120;
    let points = 960;
    let n = scaled(300, 60);
    let max_workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    println!(
        "Figure 6c: partition sweep | {n} series x {points} points | B={basic_window} | host has {max_workers} cores"
    );

    let collection = generate_berkeley_like(&BerkeleyLikeConfig {
        cells: n,
        points,
        ..BerkeleyLikeConfig::default()
    })
    .expect("generate dataset");
    let layout = ParallelEngine::layout_for(&collection, basic_window).unwrap();

    let mut table = Table::new(&["partitions", "sketch wall", "query wall"]);
    let mut json_rows = Vec::new();

    for partitions in [1usize, 2, 4, 8, 16] {
        let dir =
            std::env::temp_dir().join(format!("tsubasa-fig6c-{}-{partitions}", std::process::id()));
        let store: Arc<dyn SketchStore> = Arc::new(DiskSketchStore::create(&dir, layout).unwrap());
        let engine = ParallelEngine::new(ParallelConfig {
            workers: partitions,
            batch_pairs: 128,
            sketch_method: SketchMethod::Exact,
            audit_pruned_chunks: false,
        });
        let sketch_report = engine
            .sketch_to_store(&collection, basic_window, store.clone())
            .unwrap();
        let (_, query_report) = engine
            .query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();

        table.row(vec![
            partitions.to_string(),
            fmt_ms(millis(sketch_report.wall_time)),
            fmt_ms(millis(query_report.wall_time)),
        ]);
        json_rows.push(serde_json::json!({
            "partitions": partitions,
            "sketch_wall_ms": millis(sketch_report.wall_time),
            "query_wall_ms": millis(query_report.wall_time),
        }));
        std::fs::remove_dir_all(&dir).ok();
    }

    table.print("Figure 6c: impact of the number of partitions");
    tsubasa_bench::write_json(
        "fig6c_partitions",
        &serde_json::json!({
            "series": n,
            "points": points,
            "basic_window": basic_window,
            "host_cores": max_workers,
            "rows": json_rows,
        }),
    );
}
