//! Backend benchmark — one query pipeline, three sketch backends.
//!
//! The engine's `query`/`network`/`top_k` are written once against the
//! `CorrSource` trait; this bench times the identical query against each
//! backend — the in-memory dual sketch, the disk record store, and the
//! memory-mapped pile — under both query methods, and asserts the answers
//! agree bit-for-bit while reporting what each backend's serving path costs
//! (full-table zero-copy sweeps vs chunked record reads).

use std::sync::Arc;
use std::time::{Duration, Instant};

use tsubasa_bench::{fmt_ms, millis, scaled, workers, Table};
use tsubasa_core::source::CorrSource;
use tsubasa_core::sweep::{EdgeList, TopK};
use tsubasa_data::prelude::*;
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_parallel::{ParallelConfig, ParallelEngine, QueryMethod, SketchMethod};
use tsubasa_serve::mirror_sketches_to_pile;
use tsubasa_storage::store::persist_sketchset;
use tsubasa_storage::{DiskSketchStore, PileWriter, SketchStore};

fn time_queries<S: CorrSource + ?Sized>(
    engine: &ParallelEngine,
    source: &S,
    windows: usize,
    method: QueryMethod,
    theta: f64,
    k: usize,
) -> (Duration, Duration, EdgeList, TopK) {
    let t = Instant::now();
    let (net, _) = engine.network(source, 0..windows, method, theta).unwrap();
    let net_wall = t.elapsed();
    let t = Instant::now();
    let (top, _) = engine.top_k(source, 0..windows, method, k).unwrap();
    let top_wall = t.elapsed();
    (net_wall, top_wall, net, top)
}

fn main() {
    let basic_window = 120;
    let points = 960;
    let windows = points / basic_window;
    let theta = 0.7;
    let k = 50;
    let coefficients = 16;
    let workers = workers();
    let sweep: Vec<usize> = [100usize, 200].iter().map(|&n| scaled(n, 24)).collect();

    println!(
        "Backend benchmark: one CorrSource pipeline over memory / record store / pile | \
         B={basic_window} | {points} points | theta={theta} | k={k} | {workers} workers"
    );

    let engine = ParallelEngine::new(ParallelConfig {
        workers,
        batch_pairs: 256,
        sketch_method: SketchMethod::Dft { coefficients },
        audit_pruned_chunks: false,
    });

    let mut table = Table::new(&["series", "method", "backend", "network", "top-k"]);
    let mut json_rows = Vec::new();

    for &n in &sweep {
        let collection = generate_berkeley_like(&BerkeleyLikeConfig {
            cells: n,
            points,
            ..BerkeleyLikeConfig::default()
        })
        .expect("generate dataset");
        let dft =
            DftSketchSet::build(&collection, basic_window, coefficients, Transform::Naive).unwrap();

        // Record store, with both method fields persisted.
        let layout = ParallelEngine::layout_for(&collection, basic_window).unwrap();
        let dir =
            std::env::temp_dir().join(format!("tsubasa-figbackend-{}-{n}", std::process::id()));
        let store: Arc<dyn SketchStore> = Arc::new(DiskSketchStore::create(&dir, layout).unwrap());
        let mut dists: Vec<Vec<f64>> = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in a + 1..n {
                dists.push(dft.pair_distances(a, b).unwrap().to_vec());
            }
        }
        persist_sketchset(&*store, dft.base(), Some(&dists)).unwrap();

        // Pile with correlation and estimate rows mirrored per window.
        let path = std::env::temp_dir().join(format!(
            "tsubasa-figbackend-{}-{n}.pile",
            std::process::id()
        ));
        let mut writer = PileWriter::create(&path, n, basic_window).unwrap();
        mirror_sketches_to_pile(&mut writer, Some(dft.base()), Some(&dft)).unwrap();
        let pile = writer.into_pile().unwrap();

        for method in [QueryMethod::Exact, QueryMethod::Approximate] {
            let (mem_net_w, mem_top_w, mem_net, mem_top) =
                time_queries(&engine, &dft, windows, method, theta, k);
            let (store_net_w, store_top_w, store_net, store_top) =
                time_queries(&engine, &*store, windows, method, theta, k);
            let (pile_net_w, pile_top_w, pile_net, pile_top) =
                time_queries(&engine, &pile, windows, method, theta, k);

            assert_eq!(mem_net.edges(), store_net.edges(), "store net {method:?}");
            assert_eq!(mem_net.edges(), pile_net.edges(), "pile net {method:?}");
            assert_eq!(mem_top.edges, store_top.edges, "store top-k {method:?}");
            assert_eq!(mem_top.edges, pile_top.edges, "pile top-k {method:?}");

            for (backend, net_w, top_w) in [
                ("memory", mem_net_w, mem_top_w),
                ("record", store_net_w, store_top_w),
                ("pile", pile_net_w, pile_top_w),
            ] {
                table.row(vec![
                    n.to_string(),
                    format!("{method:?}"),
                    backend.to_string(),
                    fmt_ms(millis(net_w)),
                    fmt_ms(millis(top_w)),
                ]);
                json_rows.push(serde_json::json!({
                    "series": n,
                    "method": format!("{method:?}"),
                    "backend": backend,
                    "network_wall_ms": millis(net_w),
                    "top_k_wall_ms": millis(top_w),
                    "edges": mem_net.edge_count(),
                }));
            }
        }

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&path).ok();
    }

    table.print("Unified pipeline: identical queries per backend (answers bit-identical)");
    tsubasa_bench::write_json(
        "fig_backend",
        &serde_json::json!({
            "basic_window": basic_window,
            "points": points,
            "theta": theta,
            "k": k,
            "coefficients": coefficients,
            "workers": workers,
            "rows": json_rows,
        }),
    );
}
