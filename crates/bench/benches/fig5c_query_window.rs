//! Figure 5c — Query-window size analysis (in-memory).
//!
//! Setup (paper §4.2): basic window B = 50; the query-window length is swept
//! while measuring *query* time (sketches are pre-built) for TSUBASA, the DFT
//! approximation with 75% of coefficients, and the raw-data baseline.
//!
//! Expected shape (paper): TSUBASA and the approximation are on par and
//! roughly flat in the query length (they scan l*/B sketch entries); the
//! baseline scans l* raw points per pair and is one to two orders of
//! magnitude slower, growing linearly with the query length.

use tsubasa_bench::{fmt_ms, millis, scaled, time, Table};
use tsubasa_core::prelude::*;
use tsubasa_data::prelude::*;
use tsubasa_dft::approx::{approximate_correlation_matrix, ApproxStrategy};
use tsubasa_dft::sketch::{DftSketchSet, Transform};

fn main() {
    let basic_window = 50;
    let stations = scaled(60, 16);
    let points = scaled(8_760, 5_500).max(5_500);
    println!(
        "Figure 5c: query-window sweep | {stations} stations x {points} points | B={basic_window}"
    );

    let collection = generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        ..NceaLikeConfig::default()
    })
    .expect("generate dataset");

    // Sketches are built once; the figure reports query time only.
    let exact_sketch = SketchSet::build(&collection, basic_window).unwrap();
    let dft_sketch = DftSketchSet::build(
        &collection,
        basic_window,
        basic_window * 3 / 4,
        Transform::Naive,
    )
    .unwrap();
    let total_windows = exact_sketch.window_count();

    let mut table = Table::new(&["query len", "TSUBASA", "DFT approx (75%)", "baseline"]);
    let mut json_rows = Vec::new();

    for query_len in [500usize, 1_000, 2_000, 3_000, 5_000] {
        let ns = query_len / basic_window;
        let windows = total_windows - ns..total_windows;
        let query = QueryWindow::new(total_windows * basic_window - 1, query_len).unwrap();

        let (_, t_exact) =
            time(|| exact::correlation_matrix(&collection, &exact_sketch, query).unwrap());
        let (_, t_approx) = time(|| {
            approximate_correlation_matrix(&dft_sketch, windows.clone(), ApproxStrategy::Equation5)
                .unwrap()
        });
        let (_, t_baseline) = time(|| baseline::correlation_matrix(&collection, query).unwrap());

        table.row(vec![
            query_len.to_string(),
            fmt_ms(millis(t_exact)),
            fmt_ms(millis(t_approx)),
            fmt_ms(millis(t_baseline)),
        ]);
        json_rows.push(serde_json::json!({
            "query_len": query_len,
            "tsubasa_query_ms": millis(t_exact),
            "dft_query_ms": millis(t_approx),
            "baseline_query_ms": millis(t_baseline),
            "baseline_over_tsubasa": millis(t_baseline) / millis(t_exact).max(1e-9),
        }));
    }

    table.print("Figure 5c: query time vs query-window size");
    tsubasa_bench::write_json(
        "fig5c_query_window",
        &serde_json::json!({
            "stations": stations,
            "points": points,
            "basic_window": basic_window,
            "rows": json_rows,
        }),
    );
}
