//! Complexity check (paper §3.3) — empirical verification of the asymptotic
//! claims:
//!
//! * TSUBASA sketch time is `O(L·N²)` (linear in the series length for fixed
//!   N, quadratic in the number of series for fixed L);
//! * the DFT comparator's sketch time carries an extra factor of B from the
//!   naive per-window transform;
//! * the baseline's query time is `O(l*·N²)` while TSUBASA's is `O(l*/B·N²)`.
//!
//! The bench prints measured times for doubling inputs together with the
//! growth ratio so the exponent can be read off directly.

use tsubasa_bench::{fmt_ms, millis, scaled, time, Table};
use tsubasa_core::prelude::*;
use tsubasa_data::prelude::*;
use tsubasa_dft::sketch::{DftSketchSet, Transform};

fn dataset(stations: usize, points: usize) -> SeriesCollection {
    generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        missing_fraction: 0.0,
        ..NceaLikeConfig::default()
    })
    .unwrap()
}

fn main() {
    let basic_window = 100;
    println!("Complexity check (paper section 3.3) | B={basic_window}");

    // --- scaling in the series length L (fixed N) ---------------------------
    let n_fixed = scaled(24, 12);
    let mut table_l = Table::new(&["L", "TSUBASA sketch", "growth", "DFT sketch", "growth"]);
    let mut prev: Option<(f64, f64)> = None;
    for factor in [1usize, 2, 4] {
        let points = 2_000 * factor;
        let collection = dataset(n_fixed, points);
        let (_, t_exact) = time(|| SketchSet::build(&collection, basic_window).unwrap());
        let (_, t_dft) = time(|| {
            DftSketchSet::build(&collection, basic_window, basic_window, Transform::Naive).unwrap()
        });
        let (g_exact, g_dft) = prev
            .map(|(a, b)| (millis(t_exact) / a, millis(t_dft) / b))
            .unwrap_or((1.0, 1.0));
        table_l.row(vec![
            points.to_string(),
            fmt_ms(millis(t_exact)),
            format!("{g_exact:.2}x"),
            fmt_ms(millis(t_dft)),
            format!("{g_dft:.2}x"),
        ]);
        prev = Some((millis(t_exact), millis(t_dft)));
    }
    table_l.print("Sketch time vs series length L (expect ~2x per doubling: linear)");

    // --- scaling in the number of series N (fixed L) -------------------------
    let points_fixed = 2_000;
    let mut table_n = Table::new(&[
        "N",
        "TSUBASA sketch",
        "growth",
        "TSUBASA query",
        "growth",
        "baseline query",
        "growth",
    ]);
    let mut prev: Option<(f64, f64, f64)> = None;
    for factor in [1usize, 2, 4] {
        let n = scaled(16, 8) * factor;
        let collection = dataset(n, points_fixed);
        let (sketch, t_sketch) = time(|| SketchSet::build(&collection, basic_window).unwrap());
        let query = QueryWindow::new(points_fixed - 1, 2_000).unwrap();
        let (_, t_query) = time(|| exact::correlation_matrix(&collection, &sketch, query).unwrap());
        let (_, t_baseline) = time(|| baseline::correlation_matrix(&collection, query).unwrap());
        let (g_s, g_q, g_b) = prev
            .map(|(a, b, c)| {
                (
                    millis(t_sketch) / a,
                    millis(t_query) / b,
                    millis(t_baseline) / c,
                )
            })
            .unwrap_or((1.0, 1.0, 1.0));
        table_n.row(vec![
            n.to_string(),
            fmt_ms(millis(t_sketch)),
            format!("{g_s:.2}x"),
            fmt_ms(millis(t_query)),
            format!("{g_q:.2}x"),
            fmt_ms(millis(t_baseline)),
            format!("{g_b:.2}x"),
        ]);
        prev = Some((millis(t_sketch), millis(t_query), millis(t_baseline)));
    }
    table_n.print("Time vs number of series N (expect ~4x per doubling: quadratic)");

    tsubasa_bench::write_json(
        "complexity_check",
        &serde_json::json!({ "basic_window": basic_window, "note": "see stdout tables" }),
    );
}
