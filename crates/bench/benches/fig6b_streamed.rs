//! Figure 6b (streamed variant) — memory envelope of the tile-at-a-time
//! sweep vs the dense all-pairs matrix.
//!
//! The dense query path materialises the `N(N-1)/2 × windows` correlation
//! table, so its footprint grows quadratically with the number of series
//! and eventually trips the `TSUBASA_DENSE_LIMIT_BYTES` budget guard. The
//! streamed path ([`ZnormSweep`] + [`EdgeSink`]/[`TopKSink`]) keeps the
//! z-normalised window table — O(N·L) — plus one tile buffer, so it keeps
//! scaling past the dense ceiling.
//!
//! This bench pins three facts with a counting global allocator:
//!
//! * at small N the streamed network/top-k agree exactly with the dense
//!   reference (spot check, the full guarantee lives in
//!   `tests/streamed_agreement.rs`);
//! * past the ceiling the dense path fails fast with `Error::TooLarge`
//!   while the streamed path completes, with sweep-phase peak allocation
//!   bounded by O(tile), orders of magnitude below the dense requirement;
//! * the per-tile upper bounds (Equation 4 rearranged for correlations)
//!   skip real work: the pruned threshold sweep discards whole tiles yet
//!   produces the identical edge set.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use tsubasa_bench::{fmt_ms, millis, scaled, Table};
use tsubasa_core::sweep::{EdgeSink, StatsSink, TopKSink};
use tsubasa_core::{exact, SeriesCollection, SketchSet, ZnormSweep};
use tsubasa_data::prelude::*;

/// Counting wrapper around the system allocator: tracks live bytes and the
/// high-water mark so each phase's peak extra allocation can be measured.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn bump(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            bump(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                bump(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[allow(unsafe_code)]
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Start a fresh measurement window: returns the live baseline and resets
/// the peak to it. `peak_extra(baseline)` afterwards is the phase's
/// high-water mark above that baseline.
fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

fn peak_extra(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

fn fmt_bytes(b: u128) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}

/// Three-quarters Berkeley-like grid cells (smooth, regionally correlated —
/// variance dominated by between-window structure) plus one quarter
/// white-noise series (variance almost entirely within-window). The mix
/// makes the per-pair correlation bound informative: smooth-vs-noise pairs
/// have provably low correlation, so the pruned sweeps can discard whole
/// tiles without looking at them.
fn mixed_collection(n: usize, points: usize) -> SeriesCollection {
    let grid_cells = (n * 3 / 4).max(2);
    let noise_cells = n - grid_cells;
    let grid = generate_berkeley_like(&BerkeleyLikeConfig {
        cells: grid_cells,
        points,
        ..BerkeleyLikeConfig::default()
    })
    .expect("generate dataset");
    let mut rows: Vec<Vec<f64>> = grid.iter().map(|s| s.values().to_vec()).collect();
    for s in 0..noise_cells {
        let mut state = (s as u64 + 1).wrapping_mul(6364136223846793005);
        rows.push(
            (0..points)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
                })
                .collect(),
        );
    }
    SeriesCollection::from_rows(rows).expect("mixed collection")
}

fn main() {
    let basic_window = 120;
    let points = 960;
    let windows = points / basic_window;
    let theta = 0.7;
    let k = 50;
    let tile_pairs = 1024usize;
    let sweep: Vec<usize> = [600usize, 1_600, 4_000]
        .iter()
        .map(|&n| scaled(n, 24))
        .collect();

    // Budget sized so the largest sweep point always exceeds it (even under
    // TSUBASA_BENCH_SCALE) while the smallest stays comfortably below —
    // the bench demonstrates both sides of the ceiling at any scale.
    let largest = *sweep.last().unwrap();
    let largest_pairs = largest * (largest - 1) / 2;
    let dense_limit = ((largest_pairs * windows * 8) as u64 / 4).max(64 << 10);
    std::env::set_var("TSUBASA_DENSE_LIMIT_BYTES", dense_limit.to_string());

    println!(
        "Figure 6b (streamed): tile-at-a-time sweep vs dense matrix | B={basic_window} | \
         query window {points} | theta={theta} | k={k} | dense budget {}",
        fmt_bytes(dense_limit as u128)
    );

    // --- Agreement spot check at the smallest N --------------------------
    let n0 = sweep[0];
    let c0 = mixed_collection(n0, points);
    let zs0 = ZnormSweep::build(&c0, basic_window, 0..windows).unwrap();
    let streamed_net = zs0.network_streamed(theta).unwrap();
    let sketch0 = SketchSet::build(&c0, basic_window).unwrap();
    let dense0 = exact::correlation_matrix_aligned(&sketch0, 0..windows).unwrap();
    let agree = streamed_net.to_adjacency() == dense0.threshold(theta).unwrap();
    assert!(agree, "streamed network must equal the dense threshold");
    println!(
        "agreement @ N={n0}: streamed == dense ({} edges)",
        streamed_net.edge_count()
    );

    let mut table = Table::new(&[
        "series",
        "dense need",
        "dense",
        "state",
        "sweep peak",
        "net wall",
        "edges",
        "pruned skip",
        "top-k wall",
        "top-k skip",
    ]);
    let mut json_rows = Vec::new();

    for &n in &sweep {
        let collection = mixed_collection(n, points);
        let pairs = n * (n - 1) / 2;
        let dense_need = (pairs as u128) * (windows as u128) * 8;

        // Dense attempt: budget-guarded before any allocation.
        let base = reset_peak();
        let dense_outcome = SketchSet::build(&collection, basic_window)
            .and_then(|s| exact::correlation_matrix_aligned(&s, 0..windows));
        let dense_peak = peak_extra(base);
        let (dense_label, dense_err) = match &dense_outcome {
            Ok(_) => (fmt_bytes(dense_peak as u128), None),
            Err(e) => ("TooLarge".to_string(), Some(e.to_string())),
        };
        drop(dense_outcome);

        // Streamed state: the O(N·L) z-normalised table, built once.
        let base = reset_peak();
        let zs = ZnormSweep::build(&collection, basic_window, 0..windows).unwrap();
        let state_bytes = peak_extra(base);

        // Pure sweep working set: StatsSink keeps O(1) output, so the peak
        // extra allocation during this pass is the tile machinery alone.
        let base = reset_peak();
        let mut stats = StatsSink::new();
        zs.sweep_into(false, tile_pairs, &mut stats);
        let sweep_peak = peak_extra(base);
        assert_eq!(stats.count(), pairs);

        // Threshold network (output scales with the edge count — that is
        // the result, not the algorithm's working set).
        let t = Instant::now();
        let net = zs.network_streamed(theta).unwrap();
        let net_wall = t.elapsed();

        // Pruned threshold sweep: identical edges, whole tiles skipped.
        let mut pruned = EdgeSink::new(theta);
        zs.sweep_into(true, tile_pairs, &mut pruned);
        let skipped = pruned.skipped_pairs();
        let pruned_edges = pruned.finish(n);
        assert_eq!(
            pruned_edges.edge_count(),
            net.edge_count(),
            "pruning must not change the edge set"
        );

        let t = Instant::now();
        let mut top_sink = TopKSink::new(k);
        zs.sweep_into(true, tile_pairs, &mut top_sink);
        let top_skipped = top_sink.skipped_pairs();
        let top = top_sink.finish();
        let top_wall = t.elapsed();
        assert_eq!(top.edges.len(), k.min(pairs));

        table.row(vec![
            n.to_string(),
            fmt_bytes(dense_need),
            dense_label.clone(),
            fmt_bytes(state_bytes as u128),
            fmt_bytes(sweep_peak as u128),
            fmt_ms(millis(net_wall)),
            net.edge_count().to_string(),
            format!("{skipped}/{pairs}"),
            fmt_ms(millis(top_wall)),
            format!("{top_skipped}/{pairs}"),
        ]);
        json_rows.push(serde_json::json!({
            "series": n,
            "pairs": pairs,
            "dense_required_bytes": dense_need as u64,
            "dense_ok": dense_err.is_none(),
            "dense_error": dense_err.clone().unwrap_or_default(),
            "dense_peak_bytes": dense_peak,
            "znorm_state_bytes": state_bytes,
            "streamed_sweep_peak_bytes": sweep_peak,
            "network_wall_ms": millis(net_wall),
            "edges": net.edge_count(),
            "nan_pairs": net.nan_pair_count(),
            "pruned_skipped_pairs": skipped,
            "top_k_skipped_pairs": top_skipped,
            "top_k_wall_ms": millis(top_wall),
        }));
    }

    table.print("Figure 6b (streamed): memory envelope vs number of series");
    println!(
        "dense requirement grows quadratically (TooLarge past the budget); the streamed \
         state is O(N*L), the sweep working set O(tile) and flat across N."
    );
    tsubasa_bench::write_json(
        "fig6b_streamed",
        &serde_json::json!({
            "basic_window": basic_window,
            "query_window": points,
            "theta": theta,
            "k": k,
            "tile_pairs": tile_pairs,
            "dense_limit_bytes": dense_limit,
            "agreement_checked_at": n0,
            "rows": json_rows,
        }),
    );
}
