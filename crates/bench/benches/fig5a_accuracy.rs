//! Figure 5a — Network accuracy comparison.
//!
//! Setup (paper §4.1): NCEA-like station data, basic window B = 200,
//! threshold θ = 0.75. The DFT-based approximate network is built with an
//! increasing number of coefficients (50 → 200 = all of them) and compared to
//! the exact TSUBASA network on two measures: number of edges and the
//! correlation similarity ratio D_p.
//!
//! Expected shape (paper): the approximate network has *more* edges (false
//! positives, never false negatives); the edge count converges to the exact
//! count and D_p climbs to 1.0 only when (nearly) all coefficients are used.

use tsubasa_bench::{millis, scaled, time, Table};
use tsubasa_core::prelude::*;
use tsubasa_data::prelude::*;
use tsubasa_dft::approx::{approximate_correlation_matrix_reference, ApproxStrategy};
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_network::ApproxNetworkBuilder;

/// Climate networks are built on *anomaly* series (departure from the usual
/// behaviour, paper §1). Remove the diurnal climatology and a 30-day moving
/// seasonal estimate from a raw hourly series so that the correlation
/// structure reflects weather variability rather than the shared annual
/// cycle (which would otherwise connect every pair of stations).
fn deseasonalize(values: &[f64]) -> Vec<f64> {
    let diurnal_removed = {
        let clim = seasonal_climatology(values, 24);
        anomalies(values, &clim)
    };
    // Centred moving average over ~30 days of hours as the seasonal estimate.
    let half = 360usize;
    let n = diurnal_removed.len();
    let mut prefix = vec![0.0f64; n + 1];
    for (i, v) in diurnal_removed.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let mean = (prefix[hi] - prefix[lo]) / (hi - lo) as f64;
            diurnal_removed[i] - mean
        })
        .collect()
}

fn main() {
    let basic_window = 200;
    let theta = 0.75;
    let stations = scaled(100, 24);
    let points = scaled(8_760, 2_000);
    println!("Figure 5a: accuracy | {stations} stations x {points} points | B={basic_window} theta={theta}");

    let raw = generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        ..NceaLikeConfig::default()
    })
    .expect("generate dataset");
    let collection =
        SeriesCollection::from_rows(raw.iter().map(|s| deseasonalize(s.values())).collect())
            .expect("anomaly transform");

    // Exact network (independent of the coefficient count).
    let builder = HistoricalBuilder::new(
        collection.clone(),
        NetworkConfig::new(basic_window, theta).unwrap(),
    )
    .expect("sketch");
    let n_windows = builder.sketch().window_count();
    let query = QueryWindow::new(n_windows * basic_window - 1, n_windows * basic_window).unwrap();
    let (exact_matrix, exact_time) = time(|| builder.correlation_matrix(query).unwrap());
    let exact_net = exact_matrix.threshold(theta).unwrap();
    println!(
        "exact network: {} edges over {} pairs (query time {:?})",
        exact_net.edge_count(),
        collection.pair_count(),
        exact_time
    );

    let mut table = Table::new(&[
        "coefficients",
        "approx edges",
        "exact edges",
        "similarity D_p",
        "false pos",
        "false neg",
        "precision",
        "recall",
        "tiled query ms",
        "scalar query ms",
        "x",
    ]);
    let mut json_rows = Vec::new();

    for coefficients in [50usize, 100, 150, 200] {
        let sketch = DftSketchSet::build(&collection, basic_window, coefficients, Transform::Naive)
            .expect("dft sketch");
        let builder = ApproxNetworkBuilder::from_sketch(sketch);
        // Tiled batched path (ApproxPlan + Equation 4 pruning) vs the scalar
        // per-pair reference recombination — the same-binary speedup the
        // pr5_approx_kernels harness isolates, here at the Figure 5a shape.
        // Best-of-3: single-shot sub-ms timings swing ~2× on a busy box.
        let approx_net = builder.network(0..n_windows, theta).unwrap();
        let t_tiled = (0..3)
            .map(|_| time(|| builder.network(0..n_windows, theta).unwrap()).1)
            .min()
            .unwrap();
        let t_scalar = (0..3)
            .map(|_| {
                time(|| {
                    approximate_correlation_matrix_reference(
                        builder.sketch(),
                        0..n_windows,
                        ApproxStrategy::Equation5,
                    )
                    .unwrap()
                })
                .1
            })
            .min()
            .unwrap();
        let cmp = tsubasa_network::NetworkComparison::compare(&exact_net, &approx_net);
        table.row(vec![
            coefficients.to_string(),
            cmp.candidate_edges.to_string(),
            cmp.reference_edges.to_string(),
            format!("{:.4}", cmp.similarity_ratio),
            cmp.false_positives.to_string(),
            cmp.false_negatives.to_string(),
            format!("{:.4}", cmp.precision()),
            format!("{:.4}", cmp.recall()),
            format!("{:.3}", millis(t_tiled)),
            format!("{:.3}", millis(t_scalar)),
            format!("{:.2}", millis(t_scalar) / millis(t_tiled)),
        ]);
        json_rows.push(serde_json::json!({
            "coefficients": coefficients,
            "approx_edges": cmp.candidate_edges,
            "exact_edges": cmp.reference_edges,
            "similarity_ratio": cmp.similarity_ratio,
            "false_positives": cmp.false_positives,
            "false_negatives": cmp.false_negatives,
            "precision": cmp.precision(),
            "recall": cmp.recall(),
            "approx_query_tiled_ms": millis(t_tiled),
            "approx_query_scalar_ms": millis(t_scalar),
            "approx_query_speedup": millis(t_scalar) / millis(t_tiled),
        }));
    }

    table.print("Figure 5a: network accuracy vs number of DFT coefficients");
    tsubasa_bench::write_json(
        "fig5a_accuracy",
        &serde_json::json!({
            "stations": stations,
            "points": points,
            "basic_window": basic_window,
            "theta": theta,
            "exact_edges": exact_net.edge_count(),
            "rows": json_rows,
        }),
    );
}
