//! Approximate-path kernel microbenchmark: the tiled DFT sketch and the
//! batched `ApproxPlan` query sweep against their scalar reference paths,
//! same process, same data, repeated runs — the approximate sibling of
//! `pr4_kernels`.
//!
//! * sketch: `DftSketchSet::build` (coefficient-major structure-of-arrays
//!   rows + tiled difference-square sweep) vs
//!   `DftSketchSet::build_reference` (per-pair `coefficient_distance` over
//!   per-series coefficient vectors). Run with `Transform::Fft` so the
//!   transform itself does not drown the distance sweep under `O(B²)` naive
//!   DFT cost (the paths share the transform arithmetic either way).
//! * query: `ApproxPlan::build` + `correlation_matrix` (tiled Equation 5
//!   over the window-major estimate table) vs
//!   `approximate_correlation_matrix_reference` (the pre-plan scalar
//!   per-pair gather/recombine loop), full coefficients.
//!
//! Results land in `target/bench-results/pr5_approx_kernels.json`.

use tsubasa_bench::{fmt_ms, millis, scaled, time, Table};
use tsubasa_data::prelude::*;
use tsubasa_dft::approx::{approximate_correlation_matrix_reference, ApproxStrategy};
use tsubasa_dft::plan::ApproxPlan;
use tsubasa_dft::sketch::{DftSketchSet, Transform};

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..reps)
        .map(|_| millis(time(&mut f).1))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let stations = scaled(100, 24);
    let points = scaled(8_760, 2_000).max(2_000);
    let reps = 5;
    println!(
        "PR5 approx kernel micro: {stations} stations x {points} points | full coefficients | best of {reps}"
    );

    let collection = generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        ..NceaLikeConfig::default()
    })
    .expect("generate dataset");

    let mut table = Table::new(&[
        "B",
        "sketch tiled",
        "sketch scalar",
        "x",
        "query tiled",
        "query scalar",
        "x",
    ]);
    let mut json_rows = Vec::new();

    // Power-of-two windows so `Transform::Fft` actually runs the planned FFT
    // — at non-power-of-two sizes the fallback naive `O(B²)` transform
    // drowns the distance sweep and both sketch paths time the same.
    for basic_window in [64usize, 128, 256] {
        // Sketch: both paths pay the same per-window transform; the contrast
        // is the all-pairs distance pass.
        let sketch_tiled = best_of(3, || {
            DftSketchSet::build(&collection, basic_window, basic_window, Transform::Fft).unwrap()
        });
        let sketch_scalar = best_of(3, || {
            DftSketchSet::build_reference(&collection, basic_window, basic_window, Transform::Fft)
                .unwrap()
        });

        let sketch =
            DftSketchSet::build(&collection, basic_window, basic_window, Transform::Fft).unwrap();
        let windows = 0..sketch.window_count();

        let query_tiled = best_of(reps, || {
            ApproxPlan::build(&sketch, windows.clone())
                .unwrap()
                .correlation_matrix()
        });
        let query_scalar = best_of(reps, || {
            approximate_correlation_matrix_reference(
                &sketch,
                windows.clone(),
                ApproxStrategy::Equation5,
            )
            .unwrap()
        });

        table.row(vec![
            basic_window.to_string(),
            fmt_ms(sketch_tiled),
            fmt_ms(sketch_scalar),
            format!("{:.2}", sketch_scalar / sketch_tiled),
            fmt_ms(query_tiled),
            fmt_ms(query_scalar),
            format!("{:.2}", query_scalar / query_tiled),
        ]);
        json_rows.push(serde_json::json!({
            "basic_window": basic_window,
            "coefficients": basic_window,
            "sketch_tiled_ms": sketch_tiled,
            "sketch_scalar_ms": sketch_scalar,
            "sketch_speedup": sketch_scalar / sketch_tiled,
            "query_tiled_ms": query_tiled,
            "query_scalar_ms": query_scalar,
            "query_speedup": query_scalar / query_tiled,
        }));
    }

    table.print("PR5 approximate kernels vs scalar reference (best-of runs)");
    tsubasa_bench::write_json(
        "pr5_approx_kernels",
        &serde_json::json!({
            "stations": stations,
            "points": points,
            "reps": reps,
            "rows": json_rows,
        }),
    );
}
