//! Shared harness utilities for the figure-reproduction benchmarks.
//!
//! Every `benches/figNx_*.rs` target is a stand-alone binary (`harness =
//! false`) that generates its workload, runs the sweep the corresponding
//! paper figure reports, prints the series as an aligned text table, and
//! drops a machine-readable JSON copy under `target/bench-results/` (the
//! numbers quoted in `EXPERIMENTS.md` come from those files).
//!
//! Scale knobs:
//!
//! * `TSUBASA_BENCH_SCALE` — multiplies dataset sizes (default 1.0; use
//!   `0.2` for a quick smoke run, `2.0`+ on beefier machines).
//! * `TSUBASA_BENCH_WORKERS` — overrides the worker count used by the
//!   parallel benchmarks (default: available cores minus one).

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Measure the wall-clock time of a closure, returning its result too.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds as an `f64`, convenient for tables and JSON.
pub fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The dataset scale factor from `TSUBASA_BENCH_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("TSUBASA_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Apply the scale factor to a count, with a floor so sweeps stay non-trivial.
pub fn scaled(base: usize, floor: usize) -> usize {
    ((base as f64 * scale()).round() as usize).max(floor)
}

/// The worker count for parallel benchmarks: `TSUBASA_BENCH_WORKERS` or
/// available cores minus one (the paper reserves one core for the database
/// worker).
pub fn workers() -> usize {
    std::env::var("TSUBASA_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|v| *v > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get().saturating_sub(1).max(1))
                .unwrap_or(1)
        })
}

/// A simple fixed-width table printer for the benchmark output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must have as many cells as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print the table to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }
}

/// Write a JSON result blob under `target/bench-results/<name>.json` so that
/// EXPERIMENTS.md can quote exact numbers.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(body) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, body);
        println!("(results written to {})", path.display());
    }
}

/// Directory where benchmark results are persisted.
///
/// Resolution order: `CARGO_TARGET_DIR` if set; else the enclosing workspace
/// root found by walking up from the current directory to the first
/// `Cargo.lock`; else the compile-time workspace location. The workspace
/// anchor matters because cargo runs bench binaries with the *package*
/// directory as the working directory — a cwd-relative `target/` would
/// scatter results under `crates/bench/target/` instead of the advertised
/// `target/bench-results/`. The runtime walk (rather than a baked-in
/// `env!` path alone) keeps relocated checkouts writing next to themselves.
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("bench-results");
    }
    let mut dir = std::env::current_dir().unwrap_or_default();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("bench-results");
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|ws| ws.to_path_buf())
        .unwrap_or_default()
        .join("target")
        .join("bench-results")
}

/// Format a millisecond value with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0} ms")
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} us", ms * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (value, elapsed) = time(|| (0..10_000).sum::<u64>());
        assert_eq!(value, 49_995_000);
        assert!(elapsed >= Duration::ZERO);
    }

    #[test]
    fn scaled_applies_floor() {
        assert!(scaled(100, 10) >= 10);
        assert_eq!(millis(Duration::from_millis(250)), 250.0);
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["a", "value"]);
        t.row(vec!["1".into(), "10 ms".into()]);
        t.row(vec!["200".into(), "3 ms".into()]);
        let r = t.render();
        assert!(r.contains("value"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_ms_chooses_units() {
        assert_eq!(fmt_ms(0.5), "500.0 us");
        assert_eq!(fmt_ms(12.345), "12.35 ms");
        assert_eq!(fmt_ms(250.0), "250 ms");
    }

    #[test]
    fn workers_is_positive() {
        assert!(workers() >= 1);
    }
}
