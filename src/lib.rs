//! # TSUBASA
//!
//! Facade crate of the TSUBASA reproduction ("TSUBASA: Climate Network
//! Construction on Historical and Real-Time Data", SIGMOD 2022). It
//! re-exports the workspace crates under a single dependency so applications
//! can write `use tsubasa::core::prelude::*;` and friends.
//!
//! The individual crates:
//!
//! * [`core`] — exact basic-window sketching, Lemma 1/2, networks.
//! * [`dft`] — the DFT-based approximate comparator (StatStream-style).
//! * [`data`] — synthetic climate data generators and dataset utilities.
//! * [`storage`] — in-memory and disk-backed sketch stores.
//! * [`parallel`] — the partitioned parallel sketch/query engine.
//! * [`stream`] — chunked real-time ingestion and incremental updates.
//! * [`network`] — climate-network graph analysis and export.
//! * [`serve`] — epoch-published sketches, a plan cache, and a concurrent
//!   TCP query server.
//!
//! See the repository README for a walk-through and `examples/` for runnable
//! end-to-end scenarios.

#![warn(missing_docs)]

pub use tsubasa_core as core;
pub use tsubasa_data as data;
pub use tsubasa_dft as dft;
pub use tsubasa_network as network;
pub use tsubasa_parallel as parallel;
pub use tsubasa_serve as serve;
pub use tsubasa_storage as storage;
pub use tsubasa_stream as stream;

/// A single convenience prelude pulling in the most commonly used items from
/// every workspace crate.
pub mod prelude {
    pub use tsubasa_core::prelude::*;
    pub use tsubasa_data::prelude::*;
    pub use tsubasa_dft::{ApproxPlan, DftSketchSet, SlidingApproxNetwork};
    pub use tsubasa_network::{
        ApproxNetworkBuilder, ClimateNetwork, DynamicsBuilder, NetworkComparison,
    };
    pub use tsubasa_parallel::{ParallelConfig, ParallelEngine};
    pub use tsubasa_serve::{
        EpochIngest, EpochStore, PlanCache, QueryEngine, ServeClient, UnavailableReason,
    };
    pub use tsubasa_storage::{
        DiskSketchStore, MemorySketchStore, PileWriter, SketchPile, SketchStore,
    };
    pub use tsubasa_stream::{RealTimeNetwork, StreamBuffer};
}
