//! Streamed-sweep agreement guards (PR 6 tentpole).
//!
//! Four 64-case property suites — 256 cases total — pin the tile-at-a-time
//! sweep to the dense all-pairs reference on both query paths:
//!
//! * exact `network_streamed(θ)` produces exactly the edge set of
//!   `correlation_matrix(..).threshold(θ)` for random collections, random
//!   (unaligned) query windows, and random thresholds;
//! * exact `top_k(k)` returns exactly the `k` strongest dense pairs under
//!   the total-order (`f64::total_cmp` descending, packed pair index
//!   ascending), with bit-equal correlations;
//! * approximate `ApproxPlan::network_streamed(θ)` produces exactly the
//!   edge set of the dense Equation 4-pruned `ApproxPlan::network(θ)`,
//!   even though the streamed path skips whole tiles via per-tile upper
//!   bounds;
//! * approximate `ApproxPlan::top_k(k)` matches the sorted dense
//!   approximate matrix the same way.
//!
//! Deterministic companions cover the degenerate shapes property inputs
//! rarely hit: constant (zero-variance) series, two-series collections, and
//! NaN-bearing user matrices streamed through `sweep_matrix` (NaN pairs are
//! audited, never silently dropped, and never become edges).

use proptest::prelude::*;
use tsubasa_core::matrix::CorrelationMatrix;
use tsubasa_core::sketch::pair_index;
use tsubasa_core::sweep::{sweep_matrix, EdgeSink, TopKSink};
use tsubasa_core::{exact, QueryWindow, SeriesCollection, SketchSet, ZnormSweep};
use tsubasa_dft::plan::ApproxPlan;
use tsubasa_dft::sketch::{DftSketchSet, Transform};

fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
            (i as f64 * 0.23).sin() * 1.5 + noise
        })
        .collect()
}

fn collection(seed: u64, n: usize, len: usize) -> SeriesCollection {
    SeriesCollection::from_rows(
        (0..n)
            .map(|s| lcg_series(seed.wrapping_add(s as u64 * 7919), len))
            .collect(),
    )
    .unwrap()
}

/// Dense pairs sorted under the top-k total order: correlation descending
/// by `total_cmp`, ties broken by ascending packed pair index.
fn sorted_pairs(matrix: &CorrelationMatrix) -> Vec<(usize, usize, f64)> {
    let n = matrix.len();
    let mut all: Vec<(usize, usize, f64)> = matrix.iter_pairs().collect();
    all.sort_by(|a, b| {
        b.2.total_cmp(&a.2)
            .then_with(|| pair_index(a.0, a.1, n).cmp(&pair_index(b.0, b.1, n)))
    });
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact path: the streamed threshold network equals the dense
    /// `threshold(θ)` edge set exactly — same strict `c > θ` predicate,
    /// same per-pair arithmetic regardless of tile boundaries.
    #[test]
    fn prop_exact_streamed_network_matches_dense(
        seed in 0u64..10_000,
        n in 2usize..7,
        series_len in 80usize..180,
        basic in 10usize..25,
        query_frac in 3usize..9,
        theta in -0.95f64..0.95,
    ) {
        prop_assume!(basic * 2 <= series_len);
        let c = collection(seed, n, series_len);
        let sketch = SketchSet::build(&c, basic).unwrap();
        // Unaligned query so head/tail partial windows are exercised.
        let end = series_len - 1 - (seed as usize % 7).min(series_len / 8);
        let len = (end + 1) * query_frac / 9;
        prop_assume!(len >= 2);
        let query = QueryWindow::new(end, len).unwrap();
        let dense = exact::correlation_matrix(&c, &sketch, query).unwrap();
        let streamed = exact::network_streamed(&c, &sketch, query, theta).unwrap();
        prop_assert_eq!(streamed.to_adjacency(), dense.threshold(theta).unwrap());
        prop_assert_eq!(streamed.nan_pair_count(), 0);
    }

    /// Exact path: `top_k(k)` is exactly the sorted dense prefix —
    /// bit-equal correlations, identical tie-breaks — even with the
    /// bound-based tile pruning active.
    #[test]
    fn prop_exact_top_k_matches_sorted_dense(
        seed in 0u64..10_000,
        n in 2usize..7,
        series_len in 80usize..180,
        basic in 10usize..25,
        k in 0usize..40,
    ) {
        prop_assume!(basic * 2 <= series_len);
        let c = collection(seed, n, series_len);
        let sketch = SketchSet::build(&c, basic).unwrap();
        let end = series_len - 1 - (seed as usize % 5).min(series_len / 8);
        let query = QueryWindow::new(end, end / 2 + 1).unwrap();
        let dense = exact::correlation_matrix(&c, &sketch, query).unwrap();
        let all = sorted_pairs(&dense);
        let top = exact::top_k(&c, &sketch, query, k).unwrap();
        prop_assert_eq!(top.edges.len(), k.min(all.len()));
        for (got, want) in top.edges.iter().zip(&all) {
            prop_assert_eq!((got.i, got.j), (want.0, want.1));
            // Bit-equal: the streamed kernel is the dense kernel.
            prop_assert_eq!(got.corr.to_bits(), want.2.to_bits());
        }
    }

    /// Approximate path: the streamed Equation 4-pruned network equals the
    /// dense `ApproxPlan::network(θ)` edge set exactly, including at tiny
    /// coefficient counts where pruning skips many tiles.
    #[test]
    fn prop_approx_streamed_network_matches_dense(
        seed in 0u64..10_000,
        n in 2usize..7,
        series_len in 80usize..180,
        basic in 10usize..25,
        coeff in 1usize..12,
        theta in -0.95f64..0.95,
    ) {
        prop_assume!(basic * 2 <= series_len);
        let c = collection(seed, n, series_len);
        let sketch = DftSketchSet::build(&c, basic, coeff, Transform::Naive).unwrap();
        let windows = 0..sketch.window_count();
        let plan = ApproxPlan::build(&sketch, windows).unwrap();
        let streamed = plan.network_streamed(theta).unwrap();
        prop_assert_eq!(streamed.to_adjacency(), plan.network(theta).unwrap());
        prop_assert_eq!(streamed.nan_pair_count(), 0);
    }

    /// Approximate path: `ApproxPlan::top_k(k)` equals the sorted dense
    /// approximate matrix prefix bit-for-bit.
    #[test]
    fn prop_approx_top_k_matches_sorted_dense(
        seed in 0u64..10_000,
        n in 2usize..7,
        series_len in 80usize..180,
        basic in 10usize..25,
        coeff in 1usize..12,
        k in 0usize..40,
    ) {
        prop_assume!(basic * 2 <= series_len);
        let c = collection(seed, n, series_len);
        let sketch = DftSketchSet::build(&c, basic, coeff, Transform::Naive).unwrap();
        let windows = 0..sketch.window_count();
        let plan = ApproxPlan::build(&sketch, windows).unwrap();
        let all = sorted_pairs(&plan.correlation_matrix());
        let top = plan.top_k(k);
        prop_assert_eq!(top.edges.len(), k.min(all.len()));
        for (got, want) in top.edges.iter().zip(&all) {
            prop_assert_eq!((got.i, got.j), (want.0, want.1));
            prop_assert_eq!(got.corr.to_bits(), want.2.to_bits());
        }
    }
}

/// Constant (zero-variance) series clamp to correlation 0 in the kernel;
/// the streamed and dense paths must agree on that clamp — no NaN escapes
/// on either side.
#[test]
fn degenerate_constant_series_agree_on_both_paths() {
    let c = SeriesCollection::from_rows(vec![
        vec![3.0; 120],
        lcg_series(7, 120),
        vec![-1.5; 120],
        lcg_series(11, 120),
    ])
    .unwrap();
    let sketch = SketchSet::build(&c, 15).unwrap();
    let query = QueryWindow::new(119, 90).unwrap();
    let dense = exact::correlation_matrix(&c, &sketch, query).unwrap();
    for theta in [-0.5, 0.0, 0.5] {
        let streamed = exact::network_streamed(&c, &sketch, query, theta).unwrap();
        assert_eq!(streamed.to_adjacency(), dense.threshold(theta).unwrap());
        assert_eq!(streamed.nan_pair_count(), 0, "kernel clamps, never NaN");
    }
    let top = exact::top_k(&c, &sketch, query, 6).unwrap();
    assert_eq!(top.edges.len(), 6);
    assert_eq!(top.nan_pairs, 0);

    // The sketch-free streaming path agrees on the same degenerate input.
    let zs = ZnormSweep::build(&c, 15, 0..8).unwrap();
    let aligned = exact::correlation_matrix_aligned(&sketch, 0..8).unwrap();
    let streamed = zs.network_streamed(0.4).unwrap();
    assert_eq!(streamed.to_adjacency(), aligned.threshold(0.4).unwrap());
}

/// Two series is the smallest non-trivial sweep: one pair, one tile.
#[test]
fn degenerate_two_series_single_pair() {
    let c = collection(3, 2, 100);
    let sketch = SketchSet::build(&c, 20).unwrap();
    let query = QueryWindow::new(99, 80).unwrap();
    let dense = exact::correlation_matrix(&c, &sketch, query).unwrap();
    let corr = dense.get(0, 1);
    let streamed = exact::network_streamed(&c, &sketch, query, corr - 1e-6).unwrap();
    assert_eq!(streamed.edge_count(), 1);
    let streamed = exact::network_streamed(&c, &sketch, query, (corr + 1e-6).min(1.0)).unwrap();
    assert_eq!(streamed.edge_count(), 0);
    let top = exact::top_k(&c, &sketch, query, 5).unwrap();
    assert_eq!(top.edges.len(), 1);
    assert_eq!(top.edges[0].corr, corr);
}

/// NaN-bearing user matrices: the streamed sweep audits NaN pairs and the
/// edge set matches `threshold_lenient` (which also never lets a NaN pair
/// through) — the strict dense `threshold` refuses the same matrix.
#[test]
fn nan_bearing_matrix_is_audited_not_dropped() {
    let mut m = CorrelationMatrix::identity(5);
    m.set(0, 1, 0.9);
    m.set(0, 2, f64::NAN);
    m.set(1, 2, -0.3);
    m.set(2, 3, f64::NAN);
    m.set(3, 4, 0.6);
    for theta in [-0.5, 0.0, 0.55] {
        assert!(m.threshold(theta).is_err(), "strict path must refuse NaN");
        let lenient = m.threshold_lenient(theta);
        for tile in [1, 3, 1024] {
            let mut sink = EdgeSink::new(theta);
            sweep_matrix(&m, tile, &mut sink);
            let edges = sink.finish(5);
            assert_eq!(edges.nan_pair_count(), 2, "tile={tile}");
            assert_eq!(edges.to_adjacency(), lenient, "tile={tile} theta={theta}");
        }
    }
    // Top-k over the same matrix: NaN pairs are counted, never ranked.
    let mut sink = TopKSink::new(10);
    sweep_matrix(&m, 4, &mut sink);
    let top = sink.finish();
    assert_eq!(top.nan_pairs, 2);
    assert_eq!(top.edges.len(), 8, "10 pairs minus 2 NaN");
    assert_eq!((top.edges[0].i, top.edges[0].j), (0, 1));
    assert!(top.edges.iter().all(|e| !e.corr.is_nan()));
}
