//! Equality guard for the flat all-pairs kernel (PR 2 tentpole, amended by
//! the PR 4 tiled kernels).
//!
//! The scalar `QueryPlan` kernel must match the reference per-pair path
//! (`exact::pair_correlation`: `gather_contributions` → `combine`) **bit for
//! bit** across aligned and unaligned query windows: any divergence means
//! the plan's precomputed tables no longer mirror the Lemma 1 arithmetic
//! operation-for-operation.
//!
//! The matrix sweeps (`correlation_matrix`, `correlation_matrix_parallel`,
//! `correlation_matrix_aligned`) run the *tiled* batch kernel, which
//! normalizes per element and accumulates in a different order — their
//! contract is agreement within `1e-10` absolute (see
//! `tiled_kernel_agreement.rs` for the dedicated suites), while serial and
//! parallel sweeps must still agree with *each other* exactly for any worker
//! count.

use proptest::prelude::*;
use tsubasa_core::plan::QueryPlan;
use tsubasa_core::prelude::*;

fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
            (i as f64 * 0.11).sin() * 2.0 + noise
        })
        .collect()
}

fn collection(seed: u64, n: usize, len: usize) -> SeriesCollection {
    SeriesCollection::from_rows(
        (0..n)
            .map(|s| lcg_series(seed.wrapping_add(s as u64 * 131), len))
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The scalar flat kernel equals the reference per-pair path bit-for-bit
    /// on random (generally unaligned) query windows; the tiled matrix
    /// sweeps stay within the 1e-10 tolerance contract of that same
    /// reference, and serial vs parallel sweeps agree exactly for any worker
    /// count.
    #[test]
    fn prop_flat_kernel_and_parallel_sweep_match_reference(
        seed in 0u64..10_000,
        n in 2usize..6,
        series_len in 60usize..220,
        basic in 5usize..40,
        start_off in 0usize..35,
        end_off in 0usize..35,
        workers in 1usize..5,
    ) {
        let c = collection(seed, n, series_len);
        let sketch = SketchSet::build(&c, basic).unwrap();
        let start = start_off.min(series_len - 2);
        let end = series_len - 1 - end_off.min(series_len - 2 - start);
        prop_assume!(end > start);
        let query = QueryWindow::new(end, end - start + 1).unwrap();

        let plan = QueryPlan::build(&c, &sketch, query).unwrap();
        let serial = exact::correlation_matrix(&c, &sketch, query).unwrap();
        let parallel = exact::correlation_matrix_parallel(&c, &sketch, query, workers).unwrap();

        for (i, j) in c.pairs() {
            let reference = exact::pair_correlation(&c, &sketch, query, i, j).unwrap();
            let kernel = plan.pair_correlation(&c, &sketch, i, j).unwrap();
            prop_assert_eq!(kernel.to_bits(), reference.to_bits());
            prop_assert!((serial.get(i, j) - reference).abs() <= 1e-10);
            prop_assert_eq!(serial.get(i, j).to_bits(), parallel.get(i, j).to_bits());
        }
    }

    /// Aligned windows take the sketch-only path (no raw data); the scalar
    /// kernel must be bit-identical to the reference aligned helper, the
    /// tiled aligned sweep within tolerance of it.
    #[test]
    fn prop_aligned_kernel_matches_reference(
        seed in 0u64..10_000,
        n in 2usize..6,
        basic in 5usize..30,
        windows_total in 4usize..12,
        skip_front in 0usize..3,
        skip_back in 0usize..3,
    ) {
        prop_assume!(skip_front + skip_back + 1 < windows_total);
        let series_len = basic * windows_total;
        let c = collection(seed.wrapping_add(7), n, series_len);
        let sketch = SketchSet::build(&c, basic).unwrap();
        let range = skip_front..windows_total - skip_back;

        let plan = QueryPlan::build_aligned(&sketch, range.clone()).unwrap();
        let matrix = exact::correlation_matrix_aligned(&sketch, range.clone()).unwrap();
        for (i, j) in c.pairs() {
            let reference = exact::pair_correlation_aligned(&sketch, range.clone(), i, j).unwrap();
            let kernel = plan.pair_correlation_aligned(&sketch, i, j).unwrap();
            prop_assert_eq!(kernel.to_bits(), reference.to_bits());
            prop_assert!((matrix.get(i, j) - reference).abs() <= 1e-10);
        }
    }
}
