//! Tolerance guard for the tiled batch kernels (PR 4 tentpole).
//!
//! The tiled sketch (`SketchSet::build`, window-major z-normalized rows +
//! `Z·Zᵀ` dot products) and the tiled query sweep
//! (`QueryPlan::block_kernel` over a window-major transposed correlation
//! table) reorder floating-point accumulation relative to the scalar
//! reference paths, so their contract is **agreement within `1e-10`
//! absolute** on every correlation value — pinned here over 256 random
//! configurations each — with the scalar paths
//! (`SketchSet::build_reference`, `exact::pair_correlation`) kept alive as
//! the yardstick.
//!
//! The worker-pool suites assert the orthogonal invariant: fanning either
//! sweep out over a reusable `WorkerPool` changes *nothing* — matrices are
//! identical across 1/2/8 workers and across repeated queries on one pool.

use proptest::prelude::*;
use tsubasa_core::plan::QueryPlan;
use tsubasa_core::prelude::*;
use tsubasa_core::runner::JobRunner;
use tsubasa_parallel::WorkerPool;

fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
            (i as f64 * 0.23).sin() * 2.0 + noise
        })
        .collect()
}

fn collection(seed: u64, n: usize, len: usize) -> SeriesCollection {
    SeriesCollection::from_rows(
        (0..n)
            .map(|s| lcg_series(seed.wrapping_add(s as u64 * 977), len))
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tiled sketch vs scalar reference sketch: identical per-series
    /// statistics, pair correlations within 1e-10.
    #[test]
    fn prop_tiled_sketch_agrees_with_reference(
        seed in 0u64..10_000,
        n in 2usize..7,
        series_len in 40usize..200,
        basic in 4usize..40,
    ) {
        prop_assume!(basic <= series_len);
        let c = collection(seed, n, series_len);
        let tiled = SketchSet::build(&c, basic).unwrap();
        let reference = SketchSet::build_reference(&c, basic).unwrap();
        for (i, j) in c.pairs() {
            let t = tiled.pair_sketch(i, j).unwrap();
            let r = reference.pair_sketch(i, j).unwrap();
            for (ct, cr) in t.corrs.iter().zip(&r.corrs) {
                prop_assert!((ct - cr).abs() <= 1e-10, "pair ({i},{j}): {ct} vs {cr}");
            }
        }
        for i in 0..n {
            prop_assert_eq!(
                tiled.series_sketch(i).unwrap(),
                reference.series_sketch(i).unwrap()
            );
        }
    }

    /// Block-kernel matrix sweep vs the scalar per-pair reference path on
    /// random (generally unaligned) query windows, over a reference sketch
    /// so only the query kernel is under test.
    #[test]
    fn prop_block_kernel_agrees_with_scalar_reference(
        seed in 0u64..10_000,
        n in 2usize..7,
        series_len in 60usize..220,
        basic in 5usize..40,
        start_off in 0usize..35,
        end_off in 0usize..35,
    ) {
        let c = collection(seed.wrapping_add(13), n, series_len);
        let sketch = SketchSet::build_reference(&c, basic).unwrap();
        let start = start_off.min(series_len - 2);
        let end = series_len - 1 - end_off.min(series_len - 2 - start);
        prop_assume!(end > start);
        let query = QueryWindow::new(end, end - start + 1).unwrap();

        let matrix = exact::correlation_matrix(&c, &sketch, query).unwrap();
        let plan = QueryPlan::build(&c, &sketch, query).unwrap();
        for (i, j) in c.pairs() {
            let reference = exact::pair_correlation(&c, &sketch, query, i, j).unwrap();
            prop_assert!(
                (matrix.get(i, j) - reference).abs() <= 1e-10,
                "pair ({i},{j}): {} vs {}", matrix.get(i, j), reference
            );
            // The scalar plan kernel stays bit-identical to the reference.
            let kernel = plan.pair_correlation(&c, &sketch, i, j).unwrap();
            prop_assert_eq!(kernel.to_bits(), reference.to_bits());
        }
    }
}

#[test]
fn pool_worker_count_does_not_change_the_matrix() {
    let c = collection(42, 9, 360);
    let sketch = SketchSet::build(&c, 30).unwrap();
    // Unaligned query so the head/tail tiles run under the pool too.
    let query = QueryWindow::new(343, 250).unwrap();
    let serial = exact::correlation_matrix(&c, &sketch, query).unwrap();
    for workers in [1usize, 2, 8] {
        let pool = WorkerPool::new(workers);
        let pooled = exact::correlation_matrix_parallel_in(&pool, &c, &sketch, query).unwrap();
        assert_eq!(serial, pooled, "workers={workers}");
    }
}

#[test]
fn one_pool_serves_many_queries_without_respawning() {
    let c = collection(7, 8, 400);
    let sketch = SketchSet::build(&c, 25).unwrap();
    let pool = WorkerPool::new(4);
    assert_eq!(pool.worker_count(), 4);
    // The same pool instance is handed to every query (and a sliding-network
    // ingest) back to back; each result must equal its fresh-thread twin.
    for (end, len) in [(399usize, 300usize), (349, 200), (374, 175), (399, 100)] {
        let query = QueryWindow::new(end, len).unwrap();
        let pooled = exact::correlation_matrix_parallel_in(&pool, &c, &sketch, query).unwrap();
        let serial = exact::correlation_matrix(&c, &sketch, query).unwrap();
        assert_eq!(pooled, serial, "query ({end},{len})");
    }
    let mut net = SlidingNetwork::initialize(&c, &sketch, 200).unwrap();
    let chunk: Vec<Vec<f64>> = (0..8).map(|s| lcg_series(s as u64 + 500, 25)).collect();
    let mut twin = net.clone();
    net.ingest_in(&pool, &chunk).unwrap();
    twin.ingest(&chunk).unwrap();
    assert_eq!(net.correlation_matrix(), twin.correlation_matrix());
}
