//! Plan-cache guards (PR 7).
//!
//! A cached plan must be indistinguishable from a freshly built one — the
//! cache is a pure memoization of `(epoch, windows, method) → plan` — and
//! the LRU/invalidation machinery must never change results, only counters.
//!
//! * a 64-case property suite pins cached-plan answers **bit-equal** to
//!   fresh-plan answers and to the serial library reference, for both
//!   methods and both query kinds;
//! * deterministic tests pin the LRU behavior at capacity 1 (the thrash
//!   floor), the epoch-rollover invalidation, and the hit/miss/eviction
//!   counters.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use tsubasa_core::plan::PlanMethod;
use tsubasa_core::{exact, SeriesCollection};
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_dft::ApproxPlan;
use tsubasa_parallel::WorkerPool;
use tsubasa_serve::{EpochStore, PlanCache, QueryEngine};
use tsubasa_stream::EpochSketches;

fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
            (i as f64 * 0.23).sin() * 1.5 + noise
        })
        .collect()
}

fn collection(seed: u64, n: usize, len: usize) -> SeriesCollection {
    SeriesCollection::from_rows(
        (0..n)
            .map(|s| lcg_series(seed.wrapping_add(s as u64 * 7919), len))
            .collect(),
    )
    .unwrap()
}

const BASIC: usize = 20;

/// A dual-method epoch (exact base + DFT comparator) published into a fresh
/// engine.
fn engine(seed: u64, cache_capacity: usize, store_capacity: usize) -> (QueryEngine, DftSketchSet) {
    let c = collection(seed, 6, 160);
    let dft = DftSketchSet::build(&c, BASIC, BASIC, Transform::Naive).unwrap();
    let store = Arc::new(EpochStore::new(store_capacity));
    store
        .publish(Some(dft.base().clone()), Some(dft.clone()))
        .unwrap();
    let eng = QueryEngine::new(
        store,
        Arc::new(PlanCache::new(cache_capacity)),
        Arc::new(WorkerPool::new(2)),
    );
    (eng, dft)
}

fn shared() -> &'static (QueryEngine, DftSketchSet) {
    static FIXTURE: OnceLock<(QueryEngine, DftSketchSet)> = OnceLock::new();
    FIXTURE.get_or_init(|| engine(0x5eed, 64, 4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A query answered from a cached plan is bit-identical to the same
    /// query answered from a freshly built plan, and both equal the serial
    /// library reference.
    #[test]
    fn prop_cached_plan_results_bit_equal_fresh(
        theta in -0.9f64..0.9,
        last_windows in 0u32..6,
        k in 0u32..12,
        method_sel in 0u8..2,
    ) {
        let (eng, dft) = shared();
        let method = if method_sel == 1 { PlanMethod::Approximate } else { PlanMethod::Exact };
        let wc = dft.window_count();
        let windows = if last_windows == 0 {
            0..wc
        } else {
            wc - last_windows as usize..wc
        };

        // First call may miss (builds the plan), second call hits the cache.
        let (_, first) = eng.network(method, last_windows, theta).unwrap();
        let hits_before = eng.cache().stats().hits;
        let (_, second) = eng.network(method, last_windows, theta).unwrap();
        prop_assert!(eng.cache().stats().hits > hits_before, "repeat must hit");
        prop_assert_eq!(first.edges(), second.edges());
        prop_assert_eq!(first.nan_pair_count(), second.nan_pair_count());

        let (_, top_a) = eng.top_k(method, last_windows, k).unwrap();
        let (_, top_b) = eng.top_k(method, last_windows, k).unwrap();
        prop_assert_eq!(top_a.edges.len(), top_b.edges.len());
        for (a, b) in top_a.edges.iter().zip(&top_b.edges) {
            prop_assert_eq!((a.i, a.j, a.corr.to_bits()), (b.i, b.j, b.corr.to_bits()));
        }

        // Serial references, freshly planned every time.
        match method {
            PlanMethod::Exact => {
                let net = exact::network_streamed_aligned(dft.base(), windows.clone(), theta).unwrap();
                prop_assert_eq!(second.edges(), net.edges());
                let top = exact::top_k_aligned(dft.base(), windows, k as usize).unwrap();
                prop_assert_eq!(top_b.edges.len(), top.edges.len());
                for (a, b) in top_b.edges.iter().zip(&top.edges) {
                    prop_assert_eq!((a.i, a.j, a.corr.to_bits()), (b.i, b.j, b.corr.to_bits()));
                }
            }
            PlanMethod::Approximate => {
                let plan = ApproxPlan::build(dft, windows).unwrap();
                let net = plan.network_streamed(theta).unwrap();
                prop_assert_eq!(second.edges(), net.edges());
                let top = plan.top_k(k as usize);
                prop_assert_eq!(top_b.edges.len(), top.edges.len());
                for (a, b) in top_b.edges.iter().zip(&top.edges) {
                    prop_assert_eq!((a.i, a.j, a.corr.to_bits()), (b.i, b.j, b.corr.to_bits()));
                }
            }
        }
    }
}

/// Capacity-1 LRU: alternating window ranges thrash (every lookup a miss,
/// every insert an eviction), repeated ranges hit — and results stay correct
/// throughout.
#[test]
fn capacity_one_cache_thrashes_without_wrong_answers() {
    let (eng, dft) = engine(0xcafe, 1, 4);
    let wc = dft.window_count();

    for round in 0..3 {
        for lw in [2u32, 4] {
            let (_, net) = eng.network(PlanMethod::Exact, lw, 0.3).unwrap();
            let serial =
                exact::network_streamed_aligned(dft.base(), wc - lw as usize..wc, 0.3).unwrap();
            assert_eq!(net.edges(), serial.edges(), "round {round} lw {lw}");
        }
    }
    let stats = eng.cache().stats();
    // 6 alternating lookups on a capacity-1 cache: all misses, each insert
    // evicting the previous entry.
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 6);
    assert_eq!(stats.evictions, 5);
    assert_eq!(stats.len, 1);

    // A repeat of the resident range is a hit.
    eng.network(PlanMethod::Exact, 4, 0.3).unwrap();
    assert_eq!(eng.cache().stats().hits, 1);
}

/// Epoch rollover: cached plans for epochs that leave the retention window
/// are invalidated (not counted as evictions), and the next query against
/// the new epoch is a miss that still answers correctly.
#[test]
fn epoch_rollover_invalidates_stale_plans() {
    let (eng, dft) = engine(0xfeed, 16, 2);

    eng.network(PlanMethod::Exact, 0, 0.2).unwrap();
    eng.top_k(PlanMethod::Exact, 0, 5).unwrap();
    // Network and top-k over the same (epoch, windows, method) share one
    // plan entry: the second query is a hit, not a second slot.
    assert_eq!(eng.cache().stats().len, 1);
    assert_eq!(eng.cache().stats().hits, 1);

    // Publishing epoch 2 keeps epoch 1 retained (capacity 2): nothing
    // invalidated yet.
    let publish = |eng: &QueryEngine| {
        eng.publish(EpochSketches {
            exact: Some(dft.base().clone()),
            approx: None,
        })
        .unwrap()
    };
    publish(&eng);
    assert_eq!(eng.store().oldest_retained(), Some(1));
    assert_eq!(eng.cache().stats().len, 1);

    // Epoch 3 rolls epoch 1 out: its cached plan is dropped.
    publish(&eng);
    assert_eq!(eng.store().oldest_retained(), Some(2));
    let stats = eng.cache().stats();
    assert_eq!(stats.len, 0);
    assert_eq!(stats.evictions, 0, "invalidation is not an eviction");

    // The next query misses, plans against epoch 3, and still matches the
    // serial reference.
    let misses_before = eng.cache().stats().misses;
    let (epoch, net) = eng.network(PlanMethod::Exact, 0, 0.2).unwrap();
    assert_eq!(epoch, 3);
    assert_eq!(eng.cache().stats().misses, misses_before + 1);
    let wc = dft.window_count();
    let serial = exact::network_streamed_aligned(dft.base(), 0..wc, 0.2).unwrap();
    assert_eq!(net.edges(), serial.edges());
}

/// The exact and approximate plans for the same (epoch, windows) coordinate
/// are distinct cache entries — a method never answers from the other
/// method's plan.
#[test]
fn methods_occupy_distinct_cache_slots() {
    let (eng, _) = engine(0xbead, 16, 4);
    eng.network(PlanMethod::Exact, 0, 0.4).unwrap();
    eng.network(PlanMethod::Approximate, 0, 0.4).unwrap();
    let stats = eng.cache().stats();
    assert_eq!(stats.len, 2);
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 0);
}
