//! Round-trip tests for the sketch stores: whatever is written through the
//! [`SketchStore`] trait must read back identically from the disk-backed
//! store and the in-memory store, and a freshly persisted sketch set must
//! re-hydrate equal to the original.

use std::path::PathBuf;

use tsubasa::core::prelude::*;
use tsubasa::storage::{DiskSketchStore, MemorySketchStore, PairWindowRecord, SketchStore};
use tsubasa_storage::store::{load_sketchset, persist_sketchset, StoreLayout};

/// A fresh per-test temp directory; recreated empty on entry, removed by the
/// guard on drop so reruns and panics cannot leak state between tests.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("tsubasa-store-rt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small deterministic collection with non-trivial cross-correlations.
fn sample_collection(n_series: usize, len: usize) -> SeriesCollection {
    let rows: Vec<Vec<f64>> = (0..n_series)
        .map(|s| {
            (0..len)
                .map(|t| {
                    let t = t as f64;
                    (t * 0.07 + s as f64).sin() * 3.0 + (s as f64 + 1.0) * 0.01 * t
                })
                .collect()
        })
        .collect();
    SeriesCollection::from_rows(rows).unwrap()
}

/// Field-wise record equality that treats NaN as equal to NaN: pair records
/// persisted without the DFT comparator carry `dft_dist: NaN`, which derived
/// `PartialEq` (IEEE semantics) would never match.
fn pair_records_equal(a: &[PairWindowRecord], b: &[PairWindowRecord]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.a == y.a
                && x.b == y.b
                && x.window == y.window
                && x.corr.to_bits() == y.corr.to_bits()
                && x.dft_dist.to_bits() == y.dft_dist.to_bits()
        })
}

fn layout_for(sketch: &SketchSet) -> StoreLayout {
    StoreLayout {
        n_series: sketch.series_count(),
        n_windows: sketch.window_count(),
        basic_window: sketch.basic_window(),
    }
}

#[test]
fn disk_store_reads_back_identical_to_memory_store() {
    let tmp = TempDir::new("disk-vs-mem");
    let collection = sample_collection(5, 96);
    let sketch = SketchSet::build(&collection, 12).unwrap();
    let layout = layout_for(&sketch);

    let memory = MemorySketchStore::new(layout);
    let disk = DiskSketchStore::create(&tmp.0, layout).unwrap();
    persist_sketchset(&memory, &sketch, None).unwrap();
    persist_sketchset(&disk, &sketch, None).unwrap();

    // Every series over every window range.
    for s in 0..layout.n_series {
        for start in 0..layout.n_windows {
            for end in (start + 1)..=layout.n_windows {
                let from_mem = memory.read_series(s, start..end).unwrap();
                let from_disk = disk.read_series(s, start..end).unwrap();
                assert_eq!(from_mem, from_disk, "series {s} windows {start}..{end}");
            }
        }
    }

    // Every pair, in both id orders, over the full range.
    for a in 0..layout.n_series {
        for b in (a + 1)..layout.n_series {
            let from_mem = memory.read_pair(a, b, 0..layout.n_windows).unwrap();
            let from_disk = disk.read_pair(a, b, 0..layout.n_windows).unwrap();
            assert!(pair_records_equal(&from_mem, &from_disk), "pair ({a},{b})");
            let swapped = disk.read_pair(b, a, 0..layout.n_windows).unwrap();
            assert!(
                pair_records_equal(&from_disk, &swapped),
                "pair id order must not matter"
            );
        }
    }

    // Batched pair reads agree with the one-pair path.
    let pairs: Vec<(usize, usize)> = vec![(0, 1), (1, 4), (2, 3)];
    let batched = disk.read_pairs(&pairs, 0..layout.n_windows).unwrap();
    for (&(a, b), batch) in pairs.iter().zip(&batched) {
        let single = disk.read_pair(a, b, 0..layout.n_windows).unwrap();
        assert!(pair_records_equal(batch, &single), "batched pair ({a},{b})");
    }
}

#[test]
fn persisted_sketchset_rehydrates_identically_from_both_stores() {
    let tmp = TempDir::new("rehydrate");
    let collection = sample_collection(4, 80);
    let sketch = SketchSet::build(&collection, 10).unwrap();
    let layout = layout_for(&sketch);

    let memory = MemorySketchStore::new(layout);
    persist_sketchset(&memory, &sketch, None).unwrap();
    assert_eq!(load_sketchset(&memory).unwrap(), sketch);

    let disk = DiskSketchStore::create(&tmp.0, layout).unwrap();
    persist_sketchset(&disk, &sketch, None).unwrap();
    assert_eq!(load_sketchset(&disk).unwrap(), sketch);

    // Re-open the same directory: the data must survive the handle.
    drop(disk);
    let reopened = DiskSketchStore::open(&tmp.0, layout).unwrap();
    assert_eq!(load_sketchset(&reopened).unwrap(), sketch);
}

#[test]
fn dft_distances_roundtrip_through_pair_records() {
    let tmp = TempDir::new("dft-dists");
    let collection = sample_collection(3, 48);
    let sketch = SketchSet::build(&collection, 8).unwrap();
    let layout = layout_for(&sketch);

    // Synthetic per-pair per-window distances, distinguishable per slot.
    let dists: Vec<Vec<f64>> = (0..layout.n_pairs())
        .map(|p| {
            (0..layout.n_windows)
                .map(|w| (p * 10 + w) as f64 / 4.0)
                .collect()
        })
        .collect();

    let disk = DiskSketchStore::create(&tmp.0, layout).unwrap();
    persist_sketchset(&disk, &sketch, Some(&dists)).unwrap();

    let mut idx = 0usize;
    for a in 0..layout.n_series {
        for b in (a + 1)..layout.n_series {
            let records: Vec<PairWindowRecord> = disk.read_pair(a, b, 0..layout.n_windows).unwrap();
            for (w, r) in records.iter().enumerate() {
                assert_eq!(r.dft_dist, dists[idx][w], "pair ({a},{b}) window {w}");
            }
            idx += 1;
        }
    }
}

#[test]
fn empty_store_roundtrips_and_reports_zero_space() {
    let tmp = TempDir::new("empty");
    let layout = StoreLayout {
        n_series: 0,
        n_windows: 0,
        basic_window: 8,
    };

    let memory = MemorySketchStore::new(layout);
    assert_eq!(memory.layout().n_pairs(), 0);
    memory.flush().unwrap();
    let empty = load_sketchset(&memory).unwrap();
    assert_eq!(empty.series_count(), 0);

    let disk = DiskSketchStore::create(&tmp.0, layout).unwrap();
    disk.flush().unwrap();
    let empty = load_sketchset(&disk).unwrap();
    assert_eq!(empty.series_count(), 0);
    assert_eq!(empty.window_count(), 0);

    // No records exist, so any concrete read must fail rather than fabricate.
    assert!(disk.read_series(0, 0..1).is_err());
    assert!(disk.read_pair(0, 1, 0..1).is_err());
}

#[test]
fn stores_agree_on_space_accounting_shape() {
    let tmp = TempDir::new("space");
    let collection = sample_collection(4, 64);
    let sketch = SketchSet::build(&collection, 8).unwrap();
    let layout = layout_for(&sketch);

    let memory = MemorySketchStore::new(layout);
    let disk = DiskSketchStore::create(&tmp.0, layout).unwrap();
    persist_sketchset(&memory, &sketch, None).unwrap();
    persist_sketchset(&disk, &sketch, None).unwrap();

    // Identical layout and record sizes: both stores must account the same
    // number of payload bytes (the Figure 6d metric is store-independent).
    assert!(memory.space_bytes() > 0);
    assert_eq!(memory.space_bytes(), disk.space_bytes());
}
