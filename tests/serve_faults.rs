//! Protocol fault injection for the serve crate (PR 7).
//!
//! The server must treat the network as hostile: truncated frames, oversized
//! length prefixes, unknown opcodes, random bytes, and mid-request
//! disconnects must each produce a typed `0xEE` error frame or a clean
//! close — never a panic, never a wedged worker. After every fault the
//! server must still answer a well-formed request on a fresh connection.
//!
//! * deterministic tests pin each fault class and the exact error code it
//!   maps to;
//! * a 64-case property suite drives a malformed-frame generator (mutation
//!   of a valid request) against one long-lived server.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use tsubasa_core::SeriesCollection;
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_parallel::WorkerPool;
use tsubasa_serve::proto::{
    decode_response, encode_request, read_frame, write_frame, MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME,
};
use tsubasa_serve::{
    server, EpochStore, ErrorCode, Method, PlanCache, QueryEngine, Request, Response, ServeClient,
    ServerHandle,
};

const READ_TIMEOUT: Duration = Duration::from_secs(10);

fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
            (i as f64 * 0.31).sin() + noise * 0.5
        })
        .collect()
}

/// One server shared by the whole suite: if any fault wedged or killed it,
/// every later test's follow-up request would fail.
fn fixture() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        let c =
            SeriesCollection::from_rows((0..4).map(|s| lcg_series(90 + s as u64, 80)).collect())
                .unwrap();
        let dft = DftSketchSet::build(&c, 20, 20, Transform::Naive).unwrap();
        let store = Arc::new(EpochStore::new(8));
        store.publish(Some(dft.base().clone()), Some(dft)).unwrap();
        let engine = Arc::new(QueryEngine::new(
            store,
            Arc::new(PlanCache::new(16)),
            Arc::new(WorkerPool::new(2)),
        ));
        server::start(engine, "127.0.0.1:0").unwrap()
    })
}

fn addr() -> SocketAddr {
    fixture().local_addr()
}

fn raw_conn() -> TcpStream {
    let s = TcpStream::connect(addr()).unwrap();
    s.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// A well-formed request must succeed — proves the server is still serving.
fn assert_still_serving() {
    let mut client = ServeClient::connect(addr()).unwrap();
    client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.epoch >= 1);
    let net = client.network(Method::Exact, 0, 0.5).unwrap();
    assert_eq!(net.nodes, 4);
}

/// Read one response frame off a raw connection.
fn read_response(stream: &mut TcpStream) -> Response {
    loop {
        match read_frame(stream, MAX_RESPONSE_FRAME).unwrap() {
            Some(payload) => return decode_response(&payload).unwrap(),
            None => continue, // idle timeout tick
        }
    }
}

fn expect_error(resp: Response, code: ErrorCode) {
    match resp {
        Response::Error { code: got, .. } => assert_eq!(got, code),
        other => panic!("expected {code:?} error frame, got {other:?}"),
    }
}

#[test]
fn unknown_opcode_is_typed_and_connection_survives() {
    let mut s = raw_conn();
    write_frame(&mut s, &[0x7f, 1, 2, 3]).unwrap();
    expect_error(read_response(&mut s), ErrorCode::UnknownOpcode);

    // The same connection keeps working: framing never lost sync.
    write_frame(&mut s, &encode_request(&Request::Stats)).unwrap();
    assert!(matches!(read_response(&mut s), Response::Stats(_)));
    assert_still_serving();
}

#[test]
fn malformed_body_is_typed_and_connection_survives() {
    let mut s = raw_conn();
    // Network opcode with a truncated body (needs method + windows + theta).
    write_frame(&mut s, &[0x01, 0x00]).unwrap();
    expect_error(read_response(&mut s), ErrorCode::Malformed);

    write_frame(&mut s, &encode_request(&Request::Stats)).unwrap();
    assert!(matches!(read_response(&mut s), Response::Stats(_)));
    assert_still_serving();
}

#[test]
fn empty_frame_is_malformed_and_connection_survives() {
    let mut s = raw_conn();
    write_frame(&mut s, &[]).unwrap();
    expect_error(read_response(&mut s), ErrorCode::Malformed);

    write_frame(&mut s, &encode_request(&Request::Stats)).unwrap();
    assert!(matches!(read_response(&mut s), Response::Stats(_)));
    assert_still_serving();
}

#[test]
fn oversized_length_prefix_is_answered_then_closed() {
    let mut s = raw_conn();
    // A length prefix beyond the request cap: the server cannot resync past
    // a frame it refuses to read, so it answers and hangs up.
    let huge = (MAX_REQUEST_FRAME + 1).to_le_bytes();
    s.write_all(&huge).unwrap();
    expect_error(read_response(&mut s), ErrorCode::Malformed);

    // The connection is now closed (EOF, not a hang).
    match read_frame(&mut s, MAX_RESPONSE_FRAME) {
        Err(_) => {}
        Ok(other) => panic!("expected close after oversized frame, got {other:?}"),
    }
    assert_still_serving();
}

#[test]
fn mid_request_disconnect_does_not_wedge_the_server() {
    // Claim a 64-byte frame, deliver 3 bytes, vanish.
    let mut s = raw_conn();
    s.write_all(&64u32.to_le_bytes()).unwrap();
    s.write_all(&[0x01, 0x02, 0x03]).unwrap();
    drop(s);

    // Half a length prefix, then vanish.
    let mut s = raw_conn();
    s.write_all(&[0x10, 0x00]).unwrap();
    drop(s);

    assert_still_serving();
}

#[test]
fn query_rejections_are_query_errors_not_closes() {
    let mut s = raw_conn();
    // θ outside [-1, 1] is a query-level rejection.
    write_frame(
        &mut s,
        &encode_request(&Request::Network {
            method: Method::Exact,
            last_windows: 0,
            theta: 2.5,
        }),
    )
    .unwrap();
    expect_error(read_response(&mut s), ErrorCode::Query);

    // More trailing windows than the epoch holds.
    write_frame(
        &mut s,
        &encode_request(&Request::TopK {
            method: Method::Exact,
            last_windows: 10_000,
            k: 3,
        }),
    )
    .unwrap();
    expect_error(read_response(&mut s), ErrorCode::Query);

    // Same connection, valid request: still in sync.
    write_frame(&mut s, &encode_request(&Request::Stats)).unwrap();
    assert!(matches!(read_response(&mut s), Response::Stats(_)));
}

/// How a generated case corrupts its valid request frame.
const MUT_TRUNCATE: u8 = 0;
const MUT_INFLATE_PREFIX: u8 = 1;
const MUT_BAD_OPCODE: u8 = 2;
const MUT_RANDOM_BODY: u8 = 3;
const MUT_DISCONNECT: u8 = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Malformed-frame generator: mutate a valid request frame, throw it at
    /// the server, and require a typed error frame or a clean close — then
    /// prove the server still answers a fresh well-formed request.
    #[test]
    fn prop_malformed_frames_never_kill_the_server(
        kind in 0u8..3,
        last_windows in 0u32..4,
        theta in -0.9f64..0.9,
        k in 0u32..8,
        mutation in 0u8..5,
        cut in 1usize..12,
        opcode in 0x04u8..0xff,
        body in collection::vec(0u8..255, 0..48),
    ) {
        let request = match kind {
            0 => Request::Network { method: Method::Exact, last_windows, theta },
            1 => Request::TopK { method: Method::Approximate, last_windows, k },
            _ => Request::Stats,
        };
        let payload = encode_request(&request);
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);

        let mut s = raw_conn();
        match mutation {
            MUT_TRUNCATE => {
                // Deliver a strict prefix of the frame, then hang up: the
                // server sees a mid-frame EOF and must drop the connection.
                let keep = cut.min(frame.len() - 1);
                let _ = s.write_all(&frame[..keep]);
                drop(s);
            }
            MUT_INFLATE_PREFIX => {
                // Length prefix beyond the cap: typed error, then close.
                let inflated = MAX_REQUEST_FRAME + 1 + cut as u32;
                let _ = s.write_all(&inflated.to_le_bytes());
                expect_error(read_response(&mut s), ErrorCode::Malformed);
            }
            MUT_BAD_OPCODE => {
                // Valid framing, unknown opcode byte: typed error, and the
                // connection keeps working.
                let mut p = payload.clone();
                p[0] = opcode;
                write_frame(&mut s, &p).unwrap();
                expect_error(read_response(&mut s), ErrorCode::UnknownOpcode);
                write_frame(&mut s, &encode_request(&Request::Stats)).unwrap();
                prop_assert!(matches!(read_response(&mut s), Response::Stats(_)));
            }
            MUT_RANDOM_BODY => {
                // A known opcode with random body bytes: either it happens to
                // decode (any response is fine) or it is a typed Malformed
                // error. Never a close, never a hang.
                let mut p = vec![if kind == 0 { 0x01 } else { 0x02 }];
                p.extend_from_slice(&body);
                write_frame(&mut s, &p).unwrap();
                let resp = read_response(&mut s);
                if let Response::Error { code, .. } = &resp {
                    prop_assert!(
                        matches!(code, ErrorCode::Malformed | ErrorCode::Query),
                        "unexpected error class {code:?}"
                    );
                }
                write_frame(&mut s, &encode_request(&Request::Stats)).unwrap();
                prop_assert!(matches!(read_response(&mut s), Response::Stats(_)));
            }
            MUT_DISCONNECT => {
                // Valid frame claimed, partial body delivered, disconnect.
                let keep = 4 + (cut.min(payload.len().saturating_sub(1)));
                let _ = s.write_all(&frame[..keep.min(frame.len())]);
                drop(s);
            }
            _ => unreachable!("mutation selector out of range"),
        }

        // The fault above must not have taken the server down.
        assert_still_serving();
    }
}
