//! Workspace integration tests: the accuracy experiment of Figure 5a at test
//! scale (edge count / similarity-ratio behaviour as the DFT coefficient
//! budget grows), network-dynamics tracking over a stream of snapshots, and
//! the capacity-planning helpers of §3.3.

use tsubasa::core::prelude::*;
use tsubasa::data::prelude::*;
use tsubasa::dft::approx::{approximate_network, ApproxStrategy};
use tsubasa::dft::sketch::{DftSketchSet, Transform};
use tsubasa::network::dynamics::DynamicsTracker;
use tsubasa::network::NetworkComparison;
use tsubasa::stream::{RealTimeNetwork, StreamReplay, UpdateEngine};

fn stations(count: usize, points: usize, seed: u64) -> SeriesCollection {
    generate_ncea_like(&NceaLikeConfig {
        stations: count,
        points,
        seed,
        regions: 4,
        correlation_length_km: 900.0,
        missing_fraction: 0.0,
    })
    .unwrap()
}

#[test]
fn figure_5a_shape_holds_at_test_scale() {
    // B = 200, theta = 0.75, coefficients swept upward: the approximate
    // network must (a) never miss exact edges, (b) shed false positives as
    // coefficients increase, and (c) become identical at full rank.
    let collection = stations(20, 2_400, 42);
    let b = 200;
    let theta = 0.75;
    let builder =
        HistoricalBuilder::new(collection.clone(), NetworkConfig::new(b, theta).unwrap()).unwrap();
    let n_windows = builder.sketch().window_count();
    let query = QueryWindow::new(n_windows * b - 1, n_windows * b).unwrap();
    let exact_net = builder
        .correlation_matrix(query)
        .unwrap()
        .threshold(theta)
        .unwrap();

    let mut previous_false_positives = usize::MAX;
    let mut previous_similarity = -1.0;
    for coefficients in [10usize, 50, 200] {
        let sketch = DftSketchSet::build(&collection, b, coefficients, Transform::Naive).unwrap();
        let approx =
            approximate_network(&sketch, 0..n_windows, theta, ApproxStrategy::Equation5).unwrap();
        let cmp = NetworkComparison::compare(&exact_net, &approx);
        assert!(cmp.has_no_false_negatives(), "coefficients={coefficients}");
        assert!(
            cmp.false_positives <= previous_false_positives,
            "false positives must not grow with more coefficients"
        );
        assert!(
            cmp.similarity_ratio >= previous_similarity,
            "similarity ratio must not drop with more coefficients"
        );
        previous_false_positives = cmp.false_positives;
        previous_similarity = cmp.similarity_ratio;
        if coefficients == b {
            assert_eq!(cmp.false_positives, 0);
            assert_eq!(cmp.similarity_ratio, 1.0);
            assert_eq!(cmp.candidate_edges, cmp.reference_edges);
        }
    }
}

#[test]
fn realtime_snapshots_feed_network_dynamics_analysis() {
    let total = 1_600;
    let history = 1_000;
    let b = 50;
    let query_len = 500;
    let world = stations(10, total, 7);
    let historical = world.truncate_length(history).unwrap();
    let mut rt = RealTimeNetwork::new(&historical, b, query_len, 0.8, UpdateEngine::Exact).unwrap();

    let mut tracker = DynamicsTracker::new(world.len());
    tracker.observe(&rt.network()).unwrap();
    for delivery in StreamReplay::new(&world, history, b).unwrap() {
        rt.ingest(&delivery).unwrap();
        tracker.observe(&rt.network()).unwrap();
    }
    let snapshots = tracker.snapshots();
    assert_eq!(snapshots, 1 + (total - history) / b);

    let summary = tracker.summarize();
    assert_eq!(summary.edge_counts.len(), snapshots);
    assert_eq!(summary.deltas.len(), snapshots - 1);
    assert!((0.0..=1.0).contains(&summary.mean_stability()));
    // Every backbone edge must have full persistence, and persistence is a
    // probability for every pair.
    for (i, j) in summary.backbone() {
        assert!((summary.edge_persistence(i, j) - 1.0).abs() < 1e-12);
    }
    for i in 0..world.len() {
        for j in (i + 1)..world.len() {
            let p = summary.edge_persistence(i, j);
            assert!((0.0..=1.0).contains(&p));
            // Flip counts are bounded by the number of transitions.
            assert!(summary.flip_count(i, j) < snapshots);
        }
    }
}

#[test]
fn capacity_planning_is_consistent_with_real_sketches() {
    let collection = stations(12, 1_800, 99);
    let plan_b =
        recommend_basic_window(collection.len(), collection.series_len(), 600, 1 << 20).unwrap();
    assert!(plan_b >= 1 && plan_b <= collection.series_len());

    // The plan's size prediction matches the sketch actually built with that B.
    let plan = SketchPlan {
        n_series: collection.len(),
        series_len: collection.series_len(),
        basic_window: plan_b,
    };
    let sketch = SketchSet::build(&collection, plan_b).unwrap();
    assert_eq!(plan.stored_floats(), sketch.stored_floats());

    // And the budget-derived minimum indeed fits the budget.
    let budget = 64 * 1024;
    let min_b =
        min_basic_window_for_budget(collection.len(), collection.series_len(), budget).unwrap();
    let min_plan = SketchPlan {
        n_series: collection.len(),
        series_len: collection.series_len(),
        basic_window: min_b,
    };
    assert!(min_plan.stored_bytes() <= budget);
}
