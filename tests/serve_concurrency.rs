//! Concurrency pin for the serve crate (PR 7).
//!
//! Readers query a live server over TCP while ingestion keeps publishing
//! epochs. Every response carries the id of the epoch that answered it, and
//! this suite re-computes every response **serially** against exactly that
//! snapshot (fetched back from the [`EpochStore`] by the echoed id) and
//! requires bit-identity — correlations compared via `f64::to_bits`, edge
//! lists compared in full. Publication must never tear a reader's view:
//! a response is either entirely epoch `e` or entirely epoch `e+1`.
//!
//! * `concurrent_readers_*`: 4 reader threads × 16 queries each against a
//!   server sweeping on 1, 2, and 8 workers, with ingestion publishing 12
//!   epochs underneath them;
//! * a 64-case property suite over one shared server (background ingest)
//!   varying method, query kind, window range, θ, and k.

use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use proptest::prelude::*;
use tsubasa_core::{exact, SeriesCollection};
use tsubasa_dft::sketch::Transform;
use tsubasa_dft::ApproxPlan;
use tsubasa_parallel::WorkerPool;
use tsubasa_serve::client::{NetworkReply, TopKReply};
use tsubasa_serve::{
    server, Epoch, EpochIngest, EpochStore, Method, PlanCache, QueryEngine, ServeClient,
    ServerHandle,
};

const BASIC: usize = 20;
const SERIES: usize = 6;
const INITIAL_WINDOWS: usize = 6;
const INGEST_CHUNKS: usize = 12;
const READ_TIMEOUT: Duration = Duration::from_secs(30);

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|i| {
            let noise = lcg(&mut state) as f64 / (1u64 << 31) as f64 - 1.0;
            (i as f64 * 0.17 + seed as f64 * 0.4).sin() * 1.2 + noise * 0.6
        })
        .collect()
}

fn historical(seed: u64) -> SeriesCollection {
    SeriesCollection::from_rows(
        (0..SERIES)
            .map(|s| lcg_series(seed.wrapping_add(s as u64 * 101), INITIAL_WINDOWS * BASIC))
            .collect(),
    )
    .unwrap()
}

/// One basic window of fresh points for every series.
fn chunk(seed: u64, step: usize) -> Vec<Vec<f64>> {
    (0..SERIES)
        .map(|s| lcg_series(seed ^ (step as u64 * 977 + s as u64 * 131), BASIC))
        .collect()
}

/// Serially recompute a network reply against the epoch that answered it and
/// require bit-identity.
fn verify_network(
    epoch: &Epoch,
    method: Method,
    last_windows: u32,
    theta: f64,
    got: &NetworkReply,
) {
    assert_eq!(got.epoch, epoch.id());
    let wc = epoch.window_count();
    let windows = if last_windows == 0 {
        0..wc
    } else {
        wc - last_windows as usize..wc
    };
    let serial = match method {
        Method::Exact => {
            exact::network_streamed_aligned(epoch.exact().unwrap(), windows, theta).unwrap()
        }
        Method::Approximate => ApproxPlan::build(epoch.approx().unwrap(), windows)
            .unwrap()
            .network_streamed(theta)
            .unwrap(),
    };
    assert_eq!(got.nodes as usize, serial.node_count());
    assert_eq!(got.nan_pairs, serial.nan_pair_count() as u64);
    let expect: Vec<(u32, u32)> = serial
        .edges()
        .iter()
        .map(|&(i, j)| (i as u32, j as u32))
        .collect();
    assert_eq!(
        got.edges,
        expect,
        "epoch {} windows {last_windows}",
        epoch.id()
    );
}

/// Serially recompute a top-k reply against the epoch that answered it and
/// require bit-identity (corr compared via `to_bits`).
fn verify_top_k(epoch: &Epoch, method: Method, last_windows: u32, k: u32, got: &TopKReply) {
    assert_eq!(got.epoch, epoch.id());
    let wc = epoch.window_count();
    let windows = if last_windows == 0 {
        0..wc
    } else {
        wc - last_windows as usize..wc
    };
    let serial = match method {
        Method::Exact => exact::top_k_aligned(epoch.exact().unwrap(), windows, k as usize).unwrap(),
        Method::Approximate => ApproxPlan::build(epoch.approx().unwrap(), windows)
            .unwrap()
            .top_k(k as usize),
    };
    assert_eq!(got.nan_pairs, serial.nan_pairs as u64);
    assert_eq!(got.edges.len(), serial.edges.len());
    for (a, b) in got.edges.iter().zip(&serial.edges) {
        assert_eq!(
            (a.0, a.1, a.2.to_bits()),
            (b.i as u32, b.j as u32, b.corr.to_bits()),
            "epoch {} k {k}",
            epoch.id()
        );
    }
}

/// One query chosen by `sel`, verified against the echoed epoch.
fn query_and_verify(client: &mut ServeClient, store: &EpochStore, sel: u64) {
    let method = if sel & 1 == 0 {
        Method::Exact
    } else {
        Method::Approximate
    };
    // Trailing-window counts never exceed the first epoch's coverage, so any
    // answering epoch accepts them.
    let last_windows = (sel >> 1) as u32 % (INITIAL_WINDOWS as u32 + 1);
    if sel & 8 == 0 {
        let theta = ((sel >> 4) % 180) as f64 / 100.0 - 0.9;
        let got = client.network(method, last_windows, theta).unwrap();
        let epoch = store
            .get(got.epoch)
            .expect("answering epoch still retained");
        verify_network(&epoch, method, last_windows, theta, &got);
    } else {
        let k = ((sel >> 4) % 12) as u32;
        let got = client.top_k(method, last_windows, k).unwrap();
        let epoch = store
            .get(got.epoch)
            .expect("answering epoch still retained");
        verify_top_k(&epoch, method, last_windows, k, &got);
    }
}

/// 4 reader threads × 16 queries racing 12 epoch publications; every reply
/// re-checked serially against its echoed epoch.
fn run_concurrent_readers(workers: usize) {
    let seed = 0xA5A5 ^ workers as u64;
    let store = Arc::new(EpochStore::new(64)); // retain everything published here
    let (mut ingest, first) = EpochIngest::dual(
        Arc::clone(&store),
        &historical(seed),
        BASIC,
        BASIC,
        Transform::Naive,
    )
    .unwrap();
    assert_eq!(first.id(), 1);
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        Arc::new(PlanCache::new(32)),
        Arc::new(WorkerPool::new(workers)),
    ));
    let handle = server::start(engine, "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    let readers: Vec<_> = (0..4)
        .map(|r| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
                let mut state = (seed ^ (r as u64 * 0x9E37_79B9)) | 1;
                for _ in 0..16 {
                    let sel = lcg(&mut state);
                    query_and_verify(&mut client, &store, sel);
                }
            })
        })
        .collect();

    // Publish one epoch per completed basic window while the readers hammer
    // the server.
    for step in 0..INGEST_CHUNKS {
        let published = ingest.ingest(&chunk(seed, step)).unwrap();
        assert_eq!(published.len(), 1);
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(store.published(), 1 + INGEST_CHUNKS as u64);

    for reader in readers {
        reader.join().expect("reader thread panicked");
    }
    handle.shutdown();
}

#[test]
fn concurrent_readers_match_serial_one_worker() {
    run_concurrent_readers(1);
}

#[test]
fn concurrent_readers_match_serial_two_workers() {
    run_concurrent_readers(2);
}

#[test]
fn concurrent_readers_match_serial_eight_workers() {
    run_concurrent_readers(8);
}

/// Shared fixture for the property suite: a server on 2 workers whose store
/// retains every epoch, with a background thread publishing 12 epochs while
/// the first cases run.
fn shared() -> &'static (ServerHandle, SocketAddr) {
    static FIXTURE: OnceLock<(ServerHandle, SocketAddr)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let seed = 0xBEEF;
        let store = Arc::new(EpochStore::new(64));
        let (mut ingest, _) = EpochIngest::dual(
            Arc::clone(&store),
            &historical(seed),
            BASIC,
            BASIC,
            Transform::Naive,
        )
        .unwrap();
        let engine = Arc::new(QueryEngine::new(
            store,
            Arc::new(PlanCache::new(32)),
            Arc::new(WorkerPool::new(2)),
        ));
        let handle = server::start(engine, "127.0.0.1:0").unwrap();
        let addr = handle.local_addr();
        thread::spawn(move || {
            for step in 0..INGEST_CHUNKS {
                ingest.ingest(&chunk(seed, step)).unwrap();
                thread::sleep(Duration::from_millis(20));
            }
        });
        (handle, addr)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (method, kind, windows, θ/k) query answered while epochs are
    /// being published is bit-identical to the serial answer over the epoch
    /// snapshot it echoes.
    #[test]
    fn prop_live_queries_bit_match_their_epoch(
        method_sel in 0u8..2,
        kind in 0u8..2,
        last_windows in 0u32..(INITIAL_WINDOWS as u32 + 1),
        theta in -0.9f64..0.9,
        k in 0u32..12,
    ) {
        let (handle, addr) = shared();
        let store = Arc::clone(handle.engine().store());
        let method = if method_sel == 1 { Method::Approximate } else { Method::Exact };
        let mut client = ServeClient::connect(*addr).unwrap();
        client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        if kind == 0 {
            let got = client.network(method, last_windows, theta).unwrap();
            let epoch = store.get(got.epoch).expect("answering epoch still retained");
            verify_network(&epoch, method, last_windows, theta, &got);
        } else {
            let got = client.top_k(method, last_windows, k).unwrap();
            let epoch = store.get(got.epoch).expect("answering epoch still retained");
            verify_top_k(&epoch, method, last_windows, k, &got);
        }
    }
}
