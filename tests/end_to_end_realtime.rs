//! Workspace integration tests: the real-time pipeline (Algorithm 3) —
//! bootstrap from history, stream observations in irregular deliveries, and
//! keep the incrementally-maintained network glued to a from-scratch
//! recomputation.

use tsubasa::core::prelude::*;
use tsubasa::data::prelude::*;
use tsubasa::stream::{RealTimeNetwork, StreamBuffer, StreamReplay, UpdateEngine};

fn world(stations: usize, points: usize, seed: u64) -> SeriesCollection {
    generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        seed,
        regions: 3,
        correlation_length_km: 800.0,
        missing_fraction: 0.0,
    })
    .unwrap()
}

#[test]
fn exact_incremental_network_never_drifts_from_recomputation() {
    let total = 2_000;
    let history = 1_200;
    let b = 50;
    let query_len = 600;
    let full = world(8, total, 9);
    let historical = full.truncate_length(history).unwrap();
    let mut rt =
        RealTimeNetwork::new(&historical, b, query_len, 0.75, UpdateEngine::Exact).unwrap();

    // Deliveries of awkward sizes (7 points at a time).
    for delivery in StreamReplay::new(&full, history, 7).unwrap() {
        rt.ingest(&delivery).unwrap();
        if rt.updates_applied().is_multiple_of(4) && rt.pending_points() == 0 {
            let completed = history + rt.updates_applied() * b;
            let snapshot = full.truncate_length(completed).unwrap();
            let query = QueryWindow::latest(completed, query_len).unwrap();
            let expected = baseline::correlation_matrix(&snapshot, query).unwrap();
            let diff = rt.correlation_matrix().max_abs_diff(&expected);
            assert!(
                diff < 1e-7,
                "drift {diff} after {} updates",
                rt.updates_applied()
            );
        }
    }
    assert!(
        rt.updates_applied() >= 10,
        "the test must exercise many slides"
    );
}

#[test]
fn exact_and_full_coefficient_approx_agree_while_streaming() {
    let total = 1_200;
    let history = 720;
    let b = 40;
    let query_len = 400;
    let full = world(6, total, 17);
    let historical = full.truncate_length(history).unwrap();

    let mut exact =
        RealTimeNetwork::new(&historical, b, query_len, 0.7, UpdateEngine::Exact).unwrap();
    let mut approx = RealTimeNetwork::new(
        &historical,
        b,
        query_len,
        0.7,
        UpdateEngine::Approximate { coefficients: b },
    )
    .unwrap();

    for delivery in StreamReplay::new(&full, history, b).unwrap() {
        exact.ingest(&delivery).unwrap();
        approx.ingest(&delivery).unwrap();
        assert!(
            exact
                .correlation_matrix()
                .max_abs_diff(&approx.correlation_matrix())
                < 1e-6
        );
        assert_eq!(exact.network(), approx.network());
    }
}

#[test]
fn buffered_deliveries_apply_updates_only_on_complete_windows() {
    let full = world(5, 900, 3);
    let historical = full.truncate_length(600).unwrap();
    let b = 60;
    let mut rt = RealTimeNetwork::new(&historical, b, 300, 0.7, UpdateEngine::Exact).unwrap();
    let before = rt.correlation_matrix();

    // 59 points: not enough for an update.
    let partial: Vec<Vec<f64>> = full.iter().map(|s| s.values()[600..659].to_vec()).collect();
    assert_eq!(rt.ingest(&partial).unwrap(), 0);
    assert_eq!(rt.pending_points(), 59);
    assert!(rt.correlation_matrix().max_abs_diff(&before) < 1e-15);

    // One more point completes the basic window and triggers exactly one
    // update.
    let one_more: Vec<Vec<f64>> = full.iter().map(|s| vec![s.values()[659]]).collect();
    assert_eq!(rt.ingest(&one_more).unwrap(), 1);
    assert_eq!(rt.pending_points(), 0);
    assert!(rt.correlation_matrix().max_abs_diff(&before) > 0.0);
}

#[test]
fn stream_buffer_and_replay_compose() {
    let full = world(4, 500, 5);
    let mut buffer = StreamBuffer::new(4, 30).unwrap();
    let mut chunks = 0;
    for delivery in StreamReplay::new(&full, 0, 13).unwrap() {
        chunks += buffer.push(&delivery).unwrap().len();
    }
    // 38 deliveries of 13 points = 494 points → 16 full windows of 30.
    assert_eq!(chunks, 16);
    assert_eq!(buffer.pending(), 494 - 16 * 30);
}

#[test]
fn sliding_pair_is_consistent_with_sliding_network() {
    let full = world(3, 800, 77);
    let b = 40;
    let query_len = 320;
    let history = 480;
    let historical = full.truncate_length(history).unwrap();

    let sketch = SketchSet::build(&historical, b).unwrap();
    let mut network = SlidingNetwork::initialize(&historical, &sketch, query_len).unwrap();
    let x = full.get(0).unwrap().values();
    let y = full.get(2).unwrap().values();
    let mut pair = SlidingPair::new(
        &x[history - query_len..history],
        &y[history - query_len..history],
        b,
    )
    .unwrap();

    let mut now = history;
    while now + b <= full.series_len() {
        let chunk: Vec<Vec<f64>> = full
            .iter()
            .map(|s| s.values()[now..now + b].to_vec())
            .collect();
        network.ingest(&chunk).unwrap();
        pair.ingest(&x[now..now + b], &y[now..now + b]).unwrap();
        now += b;
        assert!((network.correlation(0, 2) - pair.correlation()).abs() < 1e-9);
    }
}
