//! Pile/record-store agreement grid.
//!
//! The mapped-pile query path must be **bit-identical** to the record-store
//! path: both feed the same `block_kernel` per-pair accumulation with the
//! same window-major correlation values, so tiling, storage backend, and
//! worker count must not change a single output bit. This suite sweeps a
//! 72-case grid — series counts × basic windows × window ranges × query
//! methods × worker counts — including NaN-bearing windows (missing
//! observations poison every correlation of the affected pairs, and the NaN
//! audit must agree across backends).

use std::path::PathBuf;
use std::sync::Arc;

use tsubasa::core::prelude::*;
use tsubasa::parallel::{ParallelConfig, ParallelEngine, QueryMethod, SketchMethod};
use tsubasa::storage::{MemorySketchStore, PileWriter};

const WINDOWS: usize = 4;

/// Deterministic multi-scale series; series 0 carries one NaN observation in
/// basic window 1. The sketch kernel clamps NaN correlations to `0.0`
/// ([`clamp_corr`]'s convention), so the poisoned windows exercise the
/// clamping path identically on both backends rather than producing NaN
/// table values (those are planted explicitly in
/// `planted_nan_records_audit_identically_across_backends`).
fn collection(n: usize, basic_window: usize) -> SeriesCollection {
    let len = WINDOWS * basic_window;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            (0..len)
                .map(|i| {
                    if s == 0 && i == basic_window + 1 {
                        f64::NAN
                    } else {
                        (i as f64 * 0.11 + s as f64 * 0.63).sin()
                            + ((i * (s + 2)) % 13) as f64 * 0.05
                    }
                })
                .collect()
        })
        .collect();
    SeriesCollection::from_rows(rows).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tsubasa-pile-agree-{}-{tag}.pile",
        std::process::id()
    ))
}

#[test]
fn pile_and_record_store_agree_bit_for_bit_across_the_grid() {
    let mut cases = 0usize;
    for n in [3usize, 6, 10] {
        for b in [20usize, 50] {
            let c = collection(n, b);
            for (method, qmethod) in [
                (SketchMethod::Exact, QueryMethod::Exact),
                (
                    SketchMethod::Dft { coefficients: 8 },
                    QueryMethod::Approximate,
                ),
            ] {
                for workers in [1usize, 3] {
                    let eng = ParallelEngine::new(ParallelConfig {
                        workers,
                        batch_pairs: 8,
                        sketch_method: method,
                        audit_pruned_chunks: false,
                    });
                    let layout = ParallelEngine::layout_for(&c, b).unwrap();
                    let store = Arc::new(MemorySketchStore::new(layout));
                    eng.sketch_to_store(&c, b, store.clone()).unwrap();

                    let path = temp_path(&format!("{n}-{b}-{workers}-{:?}", qmethod));
                    let writer = PileWriter::create(&path, n, b).unwrap();
                    let (_, pile) = eng.sketch_to_pile(&c, b, writer).unwrap();

                    for windows in [0..WINDOWS, 0..2, 2..WINDOWS] {
                        let (m_store, _) = eng
                            .query_from_store(store.clone(), windows.clone(), qmethod)
                            .unwrap();
                        let (m_pile, _) = eng
                            .query_from_pile(&pile, windows.clone(), qmethod)
                            .unwrap();
                        assert_eq!(
                            m_store, m_pile,
                            "matrix mismatch n={n} b={b} {qmethod:?} w={workers} {windows:?}"
                        );

                        let (e_store, _) = eng
                            .network_from_store(store.clone(), windows.clone(), qmethod, 0.3)
                            .unwrap();
                        let (e_pile, _) = eng
                            .network_from_pile(&pile, windows.clone(), qmethod, 0.3)
                            .unwrap();
                        assert_eq!(e_store.edges(), e_pile.edges());
                        assert_eq!(e_store.nan_pair_count(), e_pile.nan_pair_count());

                        let (t_store, _) = eng
                            .top_k_from_store(store.clone(), windows.clone(), qmethod, 5)
                            .unwrap();
                        let (t_pile, _) = eng
                            .top_k_from_pile(&pile, windows.clone(), qmethod, 5)
                            .unwrap();
                        assert_eq!(t_store.edges, t_pile.edges);

                        cases += 1;
                    }
                    std::fs::remove_file(&path).ok();
                }
            }
        }
    }
    assert!(
        cases >= 64,
        "agreement grid must cover >= 64 cases, ran {cases}"
    );
}

/// NaN **table values** (the method-mismatch scenario the record store's
/// audit exists for) must be observed identically across backends: a NaN
/// record is planted in the store and the same NaN is mirrored into a
/// hand-built pile, and the exact network's exhaustive audit must count it
/// on both.
#[test]
fn planted_nan_records_audit_identically_across_backends() {
    use tsubasa::storage::{SegmentKind, SketchStore};

    let n = 6;
    let b = 25;
    let c = collection(n, b);
    let eng = ParallelEngine::new(ParallelConfig {
        workers: 2,
        batch_pairs: 8,
        sketch_method: SketchMethod::Exact,
        audit_pruned_chunks: false,
    });
    let layout = ParallelEngine::layout_for(&c, b).unwrap();
    let store = Arc::new(MemorySketchStore::new(layout));
    eng.sketch_to_store(&c, b, store.clone()).unwrap();

    // Plant a NaN correlation in pair (0, 1), window 1.
    let mut recs = store.read_pair(0, 1, 1..2).unwrap();
    recs[0].corr = f64::NAN;
    store.write_pairs(&recs).unwrap();

    // Mirror the (poisoned) store content into a pile, row by row.
    let path = temp_path("nan-plant");
    let mut writer = PileWriter::create(&path, n, b).unwrap();
    for w in 0..WINDOWS {
        let mut stats_row = Vec::with_capacity(n * 3);
        for s in 0..n {
            let st = store.read_series(s, w..w + 1).unwrap()[0];
            stats_row.extend_from_slice(&[st.len as f64, st.mean, st.std]);
        }
        writer.append(SegmentKind::SeriesStats, &stats_row).unwrap();
        let mut corr_row = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for bb in a + 1..n {
                corr_row.push(store.read_pair(a, bb, w..w + 1).unwrap()[0].corr);
            }
        }
        writer.append(SegmentKind::PairCorrs, &corr_row).unwrap();
    }
    let pile = writer.into_pile().unwrap();

    // The exact network audits exhaustively (no pruning): exactly the
    // planted pair is counted, on both backends, and the edge sets still
    // agree bit-for-bit (the kernel clamps the NaN slot to 0.0).
    let (e_store, _) = eng
        .network_from_store(store.clone(), 0..WINDOWS, QueryMethod::Exact, 0.0)
        .unwrap();
    let (e_pile, _) = eng
        .network_from_pile(&pile, 0..WINDOWS, QueryMethod::Exact, 0.0)
        .unwrap();
    assert_eq!(e_store.nan_pair_count(), 1);
    assert_eq!(e_pile.nan_pair_count(), 1);
    assert_eq!(e_store.edges(), e_pile.edges());

    let (m_store, _) = eng
        .query_from_store(store.clone(), 0..WINDOWS, QueryMethod::Exact)
        .unwrap();
    let (m_pile, _) = eng
        .query_from_pile(&pile, 0..WINDOWS, QueryMethod::Exact)
        .unwrap();
    assert_eq!(m_store, m_pile);

    // A range that excludes the poisoned window audits zero NaN pairs.
    let (clean, _) = eng
        .network_from_pile(&pile, 2..WINDOWS, QueryMethod::Exact, 0.0)
        .unwrap();
    assert_eq!(clean.nan_pair_count(), 0);
    std::fs::remove_file(&path).ok();
}
