//! Workspace integration tests: the historical-data pipeline end to end —
//! synthetic data generation → sketching → exact recombination on arbitrary
//! query windows → network construction — checked against the brute-force
//! baseline, the DFT comparator, and the inference-pruning path.

use tsubasa::core::prelude::*;
use tsubasa::data::prelude::*;
use tsubasa::dft::approx::{approximate_correlation_matrix, approximate_network, ApproxStrategy};
use tsubasa::dft::sketch::{DftSketchSet, Transform};
use tsubasa::network::{metrics, ClimateNetwork, NetworkComparison};

fn station_data(stations: usize, points: usize) -> SeriesCollection {
    generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        seed: 1234,
        regions: 4,
        correlation_length_km: 900.0,
        missing_fraction: 0.01,
    })
    .unwrap()
}

#[test]
fn exact_matches_baseline_on_many_window_shapes() {
    let collection = station_data(12, 2_200);
    let builder =
        HistoricalBuilder::new(collection.clone(), NetworkConfig::new(150, 0.75).unwrap()).unwrap();

    // Aligned, unaligned-start, unaligned-end, tiny, and within-one-window
    // query shapes.
    let queries = [
        QueryWindow::new(2_099, 1_500).unwrap(),
        QueryWindow::new(2_150, 1_111).unwrap(),
        QueryWindow::new(1_999, 777).unwrap(),
        QueryWindow::new(500, 43).unwrap(),
        QueryWindow::new(120, 50).unwrap(),
    ];
    for query in queries {
        let sketch_based = builder.correlation_matrix(query).unwrap();
        let direct = baseline::correlation_matrix(&collection, query).unwrap();
        assert!(
            sketch_based.max_abs_diff(&direct) < 1e-9,
            "query {query:?}: max diff {}",
            sketch_based.max_abs_diff(&direct)
        );
    }
}

#[test]
fn dft_with_all_coefficients_reproduces_exact_network() {
    let collection = station_data(10, 1_600);
    let b = 200;
    let theta = 0.75;
    let builder =
        HistoricalBuilder::new(collection.clone(), NetworkConfig::new(b, theta).unwrap()).unwrap();
    let dft = DftSketchSet::build(&collection, b, b, Transform::Naive).unwrap();

    let n_windows = builder.sketch().window_count();
    let query = QueryWindow::new(n_windows * b - 1, n_windows * b).unwrap();
    let exact = builder.correlation_matrix(query).unwrap();
    let approx =
        approximate_correlation_matrix(&dft, 0..n_windows, ApproxStrategy::Equation5).unwrap();
    assert!(exact.max_abs_diff(&approx) < 1e-9);

    let exact_net = exact.threshold(theta).unwrap();
    let approx_net =
        approximate_network(&dft, 0..n_windows, theta, ApproxStrategy::Equation5).unwrap();
    assert_eq!(
        NetworkComparison::compare(&exact_net, &approx_net).similarity_ratio,
        1.0
    );
}

#[test]
fn dft_with_few_coefficients_overestimates_edges_but_never_misses() {
    let collection = station_data(14, 1_600);
    let b = 200;
    let theta = 0.75;
    let builder =
        HistoricalBuilder::new(collection.clone(), NetworkConfig::new(b, theta).unwrap()).unwrap();
    let few = DftSketchSet::build(&collection, b, 8, Transform::Naive).unwrap();

    let n_windows = builder.sketch().window_count();
    let query = QueryWindow::new(n_windows * b - 1, n_windows * b).unwrap();
    let exact_net = builder
        .correlation_matrix(query)
        .unwrap()
        .threshold(theta)
        .unwrap();
    let approx_net =
        approximate_network(&few, 0..n_windows, theta, ApproxStrategy::Equation5).unwrap();

    let cmp = NetworkComparison::compare(&exact_net, &approx_net);
    assert!(
        cmp.has_no_false_negatives(),
        "Equation 4 pruning must not drop exact edges"
    );
    assert!(
        cmp.candidate_edges >= cmp.reference_edges,
        "few-coefficient approximation should be a superset ({} vs {})",
        cmp.candidate_edges,
        cmp.reference_edges
    );
}

#[test]
fn inference_pruning_reproduces_thresholded_matrix_with_less_work() {
    let collection = station_data(16, 1_200);
    let builder =
        HistoricalBuilder::new(collection.clone(), NetworkConfig::new(100, 0.6).unwrap()).unwrap();
    let query = QueryWindow::latest(collection.series_len(), 1_000).unwrap();
    let matrix = builder.correlation_matrix(query).unwrap();

    let n = collection.len();
    let outcome =
        inference::infer_threshold_matrix(n, 0.6, &[0, 1], |i, j| matrix.get(i, j)).unwrap();
    assert_eq!(outcome.matrix, matrix.threshold_abs(0.6).unwrap());
    assert_eq!(
        outcome.computed_pairs + outcome.inferred_pairs,
        n * (n - 1) / 2
    );
}

#[test]
fn climate_network_metrics_are_consistent_with_matrix() {
    let collection = station_data(10, 1_000);
    let builder =
        HistoricalBuilder::new(collection.clone(), NetworkConfig::new(100, 0.8).unwrap()).unwrap();
    let query = QueryWindow::latest(collection.series_len(), 800).unwrap();
    let matrix = builder.correlation_matrix(query).unwrap();
    let network = ClimateNetwork::from_matrix(&collection, &matrix, 0.8).unwrap();

    let direct_edges = matrix.iter_pairs().filter(|&(_, _, c)| c > 0.8).count();
    assert_eq!(network.edge_count(), direct_edges);
    let degree_sum: usize = (0..network.node_count()).map(|i| network.degree(i)).sum();
    assert_eq!(degree_sum, 2 * network.edge_count());
    assert!((0.0..=1.0).contains(&metrics::average_clustering(&network)));
}

#[test]
fn anomaly_transform_then_network_still_matches_baseline() {
    // Build anomaly series (climatology removed) and verify the sketching
    // machinery is agnostic to the transform.
    let raw = station_data(8, 1_440);
    let anomaly_rows: Vec<Vec<f64>> = raw
        .iter()
        .map(|s| anomalies_with_period_helper(s.values(), 24))
        .collect();
    let anomalies = SeriesCollection::from_rows(anomaly_rows).unwrap();
    let builder =
        HistoricalBuilder::new(anomalies.clone(), NetworkConfig::new(96, 0.5).unwrap()).unwrap();
    let query = QueryWindow::new(1_399, 1_003).unwrap();
    let a = builder.correlation_matrix(query).unwrap();
    let b = baseline::correlation_matrix(&anomalies, query).unwrap();
    assert!(a.max_abs_diff(&b) < 1e-9);
}

fn anomalies_with_period_helper(values: &[f64], period: usize) -> Vec<f64> {
    let clim = seasonal_climatology(values, period);
    anomalies(values, &clim)
}
