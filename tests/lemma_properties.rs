//! Property tests for the paper's two exactness lemmas.
//!
//! * **Lemma 1** — the Pearson correlation of an arbitrary query window,
//!   recombined from basic-window sketches (including partial head/tail
//!   windows when the query is unaligned), equals the naive computation over
//!   the raw data.
//! * **Lemma 2** — sliding the query window forward with the incremental
//!   update equals recomputing the correlation from scratch after every
//!   slide, over random update sequences.
//!
//! Each property runs at least 256 generated cases.

use proptest::prelude::*;
use tsubasa::core::prelude::*;

/// Tight numerical budget for Lemma 1: it is an algebraic identity, so the
/// recombined value must match the direct one to near machine precision.
const LEMMA1_TOL: f64 = 1e-9;

/// Lemma 2 repeatedly updates sums-of-products in place, so its error grows
/// slowly with the number of slides; this stays far below any threshold the
/// network construction would use while still catching real defects.
const LEMMA2_TOL: f64 = 1e-8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemma 1: exact recombination from sketches equals the naive baseline
    /// for random series, random basic-window sizes, and random query
    /// windows whose boundaries need not align with basic windows.
    #[test]
    fn prop_lemma1_recombination_is_exact(
        xs in proptest::collection::vec(-100.0f64..100.0, 64..200),
        ys in proptest::collection::vec(-100.0f64..100.0, 64..200),
        basic in 3usize..33,
        end_off in 0usize..25,
        len_off in 0usize..60,
    ) {
        let n = xs.len().min(ys.len());
        prop_assume!(basic <= n);
        let collection = SeriesCollection::from_rows(vec![
            xs[..n].to_vec(),
            ys[..n].to_vec(),
        ]).unwrap();
        let sketch = SketchSet::build(&collection, basic).unwrap();

        // An arbitrary, generally unaligned query window inside the series.
        let end = n - 1 - end_off.min(n - 3);
        let len = (end + 1).min(2 + len_off);
        prop_assume!(len >= 2);
        let query = QueryWindow::new(end, len).unwrap();

        let recombined = exact::pair_correlation(&collection, &sketch, query, 0, 1).unwrap();
        let direct = baseline::pair_correlation(&collection, query, 0, 1).unwrap();
        prop_assert!(
            (recombined - direct).abs() < LEMMA1_TOL,
            "lemma 1 drift: recombined {recombined} vs direct {direct} \
             (n={n}, basic={basic}, query end={end} len={len})"
        );
    }

    /// Lemma 1 must also hold when the query covers the full series and when
    /// the basic window does not divide the series length (ragged tail).
    #[test]
    fn prop_lemma1_full_range_ragged_tail(
        xs in proptest::collection::vec(-1e3f64..1e3, 30..120),
        ys in proptest::collection::vec(-1e3f64..1e3, 30..120),
        basic in 7usize..23,
    ) {
        let n = xs.len().min(ys.len());
        let collection = SeriesCollection::from_rows(vec![
            xs[..n].to_vec(),
            ys[..n].to_vec(),
        ]).unwrap();
        let sketch = SketchSet::build(&collection, basic).unwrap();
        let query = QueryWindow::new(n - 1, n).unwrap();

        let recombined = exact::pair_correlation(&collection, &sketch, query, 0, 1).unwrap();
        let direct = baseline::pair_correlation(&collection, query, 0, 1).unwrap();
        prop_assert!(
            (recombined - direct).abs() < LEMMA1_TOL,
            "lemma 1 drift on full range: {recombined} vs {direct} (n={n}, basic={basic})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemma 2: a pair slid forward one basic window at a time stays equal
    /// to the from-scratch Pearson computation over the current window, for
    /// random data, window geometry, and number of slides.
    #[test]
    fn prop_lemma2_sliding_matches_scratch(
        xs in proptest::collection::vec(-100.0f64..100.0, 224..320),
        ys in proptest::collection::vec(-100.0f64..100.0, 224..320),
        basic in 4usize..16,
        windows in 2usize..8,
        slides in 1usize..8,
    ) {
        let query_len = basic * windows;
        let total = query_len + basic * slides;
        let n = xs.len().min(ys.len());
        prop_assume!(total <= n);

        let mut pair = SlidingPair::new(&xs[..query_len], &ys[..query_len], basic).unwrap();
        for s in 0..slides {
            let lo = query_len + s * basic;
            pair.ingest(&xs[lo..lo + basic], &ys[lo..lo + basic]).unwrap();
            let start = (s + 1) * basic;
            let scratch = pearson(&xs[start..lo + basic], &ys[start..lo + basic]);
            prop_assert!(
                (pair.correlation() - scratch).abs() < LEMMA2_TOL,
                "lemma 2 drift after slide {s}: incremental {} vs scratch {scratch} \
                 (basic={basic}, windows={windows})",
                pair.correlation()
            );
        }
    }

    /// Lemma 2 at the network level: every pair of a `SlidingNetwork` stays
    /// glued to a freshly recomputed correlation matrix after each ingested
    /// chunk.
    #[test]
    fn prop_lemma2_network_matches_recomputation(
        values in proptest::collection::vec(-50.0f64..50.0, 700..800),
        basic in 5usize..12,
        windows in 2usize..6,
        slides in 1usize..5,
    ) {
        let n_series = 3usize;
        let query_len = basic * windows;
        let total = query_len + basic * slides;
        prop_assume!(n_series * total <= values.len());

        let rows: Vec<Vec<f64>> = (0..n_series)
            .map(|s| values[s * total..(s + 1) * total].to_vec())
            .collect();
        let initial: Vec<Vec<f64>> = rows.iter().map(|r| r[..query_len].to_vec()).collect();
        let initial_collection = SeriesCollection::from_rows(initial).unwrap();
        let sketch = SketchSet::build(&initial_collection, basic).unwrap();
        let mut net = SlidingNetwork::initialize(&initial_collection, &sketch, query_len).unwrap();

        for s in 0..slides {
            let lo = query_len + s * basic;
            let chunk: Vec<Vec<f64>> = rows.iter().map(|r| r[lo..lo + basic].to_vec()).collect();
            net.ingest(&chunk).unwrap();

            let start = (s + 1) * basic;
            for i in 0..n_series {
                for j in (i + 1)..n_series {
                    let scratch = pearson(&rows[i][start..lo + basic], &rows[j][start..lo + basic]);
                    prop_assert!(
                        (net.correlation(i, j) - scratch).abs() < LEMMA2_TOL,
                        "network pair ({i},{j}) drift after slide {s}: {} vs {scratch}",
                        net.correlation(i, j)
                    );
                }
            }
        }
    }
}
