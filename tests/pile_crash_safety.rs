//! Crash-safety properties of the append-only sketch pile.
//!
//! The pile's append discipline (per-kind gapless coverage, every segment
//! checksummed) means only the file tail can ever be torn. These tests cut a
//! pile at **every byte boundary of its tail segment** (well over 64 cases)
//! and require that:
//!
//! * [`SketchPile::open`] succeeds on every cut, recovering exactly the
//!   complete segments before the tear;
//! * [`PileWriter::open_append`] physically truncates the tear and, after
//!   re-appending the lost rows, reproduces the original file
//!   **bit-identically** (headers and checksums are deterministic functions
//!   of coverage and payload);
//! * [`SketchPile::compact`] rewrites the segment log without changing a
//!   single payload bit.

use std::path::PathBuf;

use tsubasa::storage::{PileWriter, SegmentKind, SketchPile};

const N_SERIES: usize = 4;
const BASIC_WINDOW: usize = 10;
const WINDOWS: usize = 6;

fn pair_count(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Deterministic, bit-reproducible synthetic rows (crash safety is about
/// bytes, not math — a NaN is planted to check it round-trips too).
fn stats_row(w: usize) -> Vec<f64> {
    (0..N_SERIES)
        .flat_map(|s| {
            [
                BASIC_WINDOW as f64,
                (w as f64 * 0.31 + s as f64).sin(),
                0.5 + (s as f64 + 1.0) * 0.01 * w as f64,
            ]
        })
        .collect()
}

fn corr_row(w: usize) -> Vec<f64> {
    (0..pair_count(N_SERIES))
        .map(|p| {
            if w == 3 && p == 1 {
                f64::NAN
            } else {
                ((w * 7 + p) as f64 * 0.13).cos()
            }
        })
        .collect()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tsubasa-pile-crash-{}-{tag}.pile",
        std::process::id()
    ))
}

/// Build the reference pile; returns the path plus the file length *before*
/// the final (tail) corr segment was appended.
fn build_reference(tag: &str) -> (PathBuf, u64) {
    let path = temp_path(tag);
    let mut writer = PileWriter::create(&path, N_SERIES, BASIC_WINDOW).unwrap();
    for w in 0..WINDOWS - 1 {
        writer
            .append(SegmentKind::SeriesStats, &stats_row(w))
            .unwrap();
        writer.append(SegmentKind::PairCorrs, &corr_row(w)).unwrap();
    }
    writer
        .append(SegmentKind::SeriesStats, &stats_row(WINDOWS - 1))
        .unwrap();
    let before_tail = writer.len_bytes();
    writer
        .append(SegmentKind::PairCorrs, &corr_row(WINDOWS - 1))
        .unwrap();
    writer.finish().unwrap();
    (path, before_tail)
}

#[test]
fn every_tail_byte_cut_opens_cleanly_and_round_trips_bit_identically() {
    let (path, before_tail) = build_reference("tail-cuts");
    let original = std::fs::read(&path).unwrap();
    let full_len = original.len() as u64;

    // The tail segment is a 64-byte header plus the padded corr payload;
    // with 6 pairs that is 64 + 48 = 112 byte boundaries — more than the 64
    // cases the acceptance floor asks for.
    let cuts: Vec<u64> = (before_tail..full_len).collect();
    assert!(
        cuts.len() >= 64,
        "need at least 64 truncation cases, got {}",
        cuts.len()
    );

    let cut_path = temp_path("tail-cuts-work");
    for &cut in &cuts {
        std::fs::write(&cut_path, &original[..cut as usize]).unwrap();

        // Torn tail: the reader recovers every complete segment and reports
        // the tear, without touching the file.
        let pile = SketchPile::open(&cut_path).unwrap();
        assert_eq!(pile.windows(SegmentKind::SeriesStats), WINDOWS);
        assert_eq!(pile.windows(SegmentKind::PairCorrs), WINDOWS - 1);
        assert_eq!(pile.exact_query_windows(), WINDOWS - 1);
        assert_eq!(pile.space_bytes(), before_tail);
        assert_eq!(pile.truncated_bytes(), cut - before_tail);
        let recovered = pile
            .pair_table(0..WINDOWS - 1, SegmentKind::PairCorrs)
            .unwrap();
        let expect = corr_row(WINDOWS - 2);
        for (a, b) in recovered.view().window_row(WINDOWS - 2).iter().zip(&expect) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        drop(pile);

        // Re-append the lost window: the writer truncates the tear and the
        // deterministic header/checksum encoding reproduces the original
        // bytes exactly.
        let mut writer = PileWriter::open_append(&cut_path).unwrap();
        assert_eq!(writer.coverage(SegmentKind::PairCorrs), WINDOWS - 1);
        writer
            .append(SegmentKind::PairCorrs, &corr_row(WINDOWS - 1))
            .unwrap();
        writer.finish().unwrap();
        let repaired = std::fs::read(&cut_path).unwrap();
        assert_eq!(repaired, original, "cut at byte {cut} did not round-trip");
    }

    std::fs::remove_file(&cut_path).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn compaction_round_trips_every_payload_bit() {
    let (path, _) = build_reference("compact");
    let before = SketchPile::open(&path).unwrap();
    let before_segments = before.segment_count();
    let stats_before = before.series_stats(0..WINDOWS).unwrap();
    let corrs_before: Vec<u64> = {
        let t = before
            .pair_table(0..WINDOWS, SegmentKind::PairCorrs)
            .unwrap();
        (0..WINDOWS)
            .flat_map(|k| {
                t.view()
                    .window_row(k)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    drop(before);

    let stats = SketchPile::compact(&path).unwrap();
    assert!(stats.segments_after < before_segments);

    let after = SketchPile::open(&path).unwrap();
    assert_eq!(after.exact_query_windows(), WINDOWS);
    assert_eq!(after.series_stats(0..WINDOWS).unwrap(), stats_before);
    let t = after
        .pair_table(0..WINDOWS, SegmentKind::PairCorrs)
        .unwrap();
    assert!(
        t.is_zero_copy(),
        "a compacted pile must serve the full range from one segment"
    );
    let corrs_after: Vec<u64> = (0..WINDOWS)
        .flat_map(|k| {
            t.view()
                .window_row(k)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(corrs_after, corrs_before);
    std::fs::remove_file(&path).ok();
}
