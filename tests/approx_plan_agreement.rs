//! Tolerance and pruning guards for the approximate plan layer (PR 5
//! tentpole).
//!
//! Three 256-case property suites:
//!
//! * the tiled coefficient-distance sweep of `DftSketchSet::build`
//!   (coefficient-major structure-of-arrays rows +
//!   `tiled_pair_dist_sq_into`) agrees with the scalar per-pair
//!   `coefficient_distance` path (`DftSketchSet::build_reference`) within
//!   `1e-10` absolute on every pair-window distance — the same tolerance
//!   contract as `tests/tiled_kernel_agreement.rs`;
//! * the batched `ApproxPlan` Equation 5 sweep (and the StatStream-average
//!   sweep) agree with the scalar per-pair reference recombination within
//!   `1e-10` absolute on every correlation;
//! * the Equation 4 pruning guarantee holds end-to-end: with all
//!   coefficients kept, the pruned approximate network misses no edge of the
//!   exact network (`NetworkComparison::has_no_false_negatives`) for random
//!   series and random thresholds.

use proptest::prelude::*;
use tsubasa_core::{exact, SeriesCollection, SketchSet};
use tsubasa_dft::approx::{
    approximate_correlation_matrix, approximate_correlation_matrix_reference,
    approximate_pair_correlation, ApproxStrategy,
};
use tsubasa_dft::plan::ApproxPlan;
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_network::NetworkComparison;

fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
            (i as f64 * 0.19).sin() * 2.0 + noise
        })
        .collect()
}

fn collection(seed: u64, n: usize, len: usize) -> SeriesCollection {
    SeriesCollection::from_rows(
        (0..n)
            .map(|s| lcg_series(seed.wrapping_add(s as u64 * 613), len))
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tiled sketch distances vs the scalar per-pair reference: every
    /// pair-window coefficient distance within 1e-10 (in practice the two
    /// agree at the last-ulp level — the difference-square sweep has no
    /// cancelling terms), identical base statistics.
    #[test]
    fn prop_tiled_distances_agree_with_scalar(
        seed in 0u64..10_000,
        n in 2usize..6,
        series_len in 40usize..140,
        basic in 4usize..16,
        coeff in 1usize..16,
    ) {
        prop_assume!(basic <= series_len);
        let c = collection(seed, n, series_len);
        let tiled = DftSketchSet::build(&c, basic, coeff, Transform::Naive).unwrap();
        let reference = DftSketchSet::build_reference(&c, basic, coeff, Transform::Naive).unwrap();
        prop_assert_eq!(tiled.coefficients(), reference.coefficients());
        prop_assert_eq!(tiled.base(), reference.base());
        for (i, j) in c.pairs() {
            let dt = tiled.pair_distances(i, j).unwrap();
            let dr = reference.pair_distances(i, j).unwrap();
            for (w, (a, b)) in dt.iter().zip(dr).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-10,
                    "pair ({},{}) window {}: {} vs {}", i, j, w, a, b
                );
            }
        }
    }

    /// Batched ApproxPlan sweep vs the scalar per-pair recombination, on
    /// random window subranges and coefficient counts, for both strategies.
    #[test]
    fn prop_approx_plan_agrees_with_scalar_reference(
        seed in 0u64..10_000,
        n in 2usize..6,
        series_len in 60usize..160,
        basic in 5usize..16,
        coeff in 1usize..16,
        start_frac in 0usize..3,
    ) {
        prop_assume!(basic <= series_len);
        let c = collection(seed.wrapping_add(7), n, series_len);
        let sk = DftSketchSet::build(&c, basic, coeff, Transform::Naive).unwrap();
        let ns = sk.window_count();
        let start = (start_frac * ns / 4).min(ns - 1);
        let windows = start..ns;

        let plan = ApproxPlan::build(&sk, windows.clone()).unwrap();
        let m = plan.correlation_matrix();
        for (i, j) in c.pairs() {
            let reference = approximate_pair_correlation(
                &sk, windows.clone(), i, j, ApproxStrategy::Equation5,
            ).unwrap();
            prop_assert!(
                (m.get(i, j) - reference).abs() <= 1e-10,
                "pair ({},{}): {} vs {}", i, j, m.get(i, j), reference
            );
        }

        let avg = approximate_correlation_matrix(
            &sk, windows.clone(), ApproxStrategy::StatStreamAverage,
        ).unwrap();
        let avg_ref = approximate_correlation_matrix_reference(
            &sk, windows, ApproxStrategy::StatStreamAverage,
        ).unwrap();
        prop_assert!(avg.max_abs_diff(&avg_ref) <= 1e-10);
    }

    /// Equation 4 end-to-end: with all coefficients kept, the pruned
    /// approximate network is a no-false-negative superset of the exact
    /// network for random series and random thresholds.
    #[test]
    fn prop_eq4_pruning_has_no_false_negatives(
        seed in 0u64..10_000,
        n in 2usize..7,
        series_len in 60usize..160,
        basic in 5usize..16,
        theta_step in 0usize..19,
    ) {
        prop_assume!(basic <= series_len);
        let theta = theta_step as f64 * 0.05;
        let c = collection(seed.wrapping_add(29), n, series_len);

        // All coefficients kept: distances are exact (up to FP), so the
        // Equation 4 radius prunes nothing that the exact network keeps.
        let sk = DftSketchSet::build(&c, basic, basic, Transform::Naive).unwrap();
        let ns = sk.window_count();
        let approx_net = ApproxPlan::build(&sk, 0..ns).unwrap().network(theta).unwrap();

        let exact_sketch = SketchSet::build(&c, basic).unwrap();
        let exact_net = exact::correlation_matrix_aligned(&exact_sketch, 0..ns)
            .unwrap()
            .threshold(theta)
            .unwrap();

        let cmp = NetworkComparison::compare(&exact_net, &approx_net);
        prop_assert!(
            cmp.has_no_false_negatives(),
            "theta {}: {} exact edges, {} candidate edges, {} false negatives",
            theta, cmp.reference_edges, cmp.candidate_edges, cmp.false_negatives
        );
        prop_assert!(cmp.candidate_edges >= cmp.reference_edges);
    }
}
