//! Cross-backend [`CorrSource`] agreement grid.
//!
//! The tentpole invariant of the unified query pipeline: every backend —
//! in-memory sketches, the record store, the mapped pile, and the pile with
//! mmap disabled (`TSUBASA_PILE_NO_MMAP=1`) — answers matrix, network, and
//! top-k queries **bit-identically** under both query methods, at any worker
//! count. The engine's `query`/`network`/`top_k` are written once against
//! the trait, so this grid is the proof that the per-backend adapters feed
//! the kernel the same window-major values: ≥64 cases of
//! `{backend} × {exact, approximate} × {matrix, network(θ), top_k} ×
//! {1, 2, 8 workers}`.

use std::ops::Range;
use std::path::PathBuf;
use std::sync::Arc;

use tsubasa::core::prelude::*;
use tsubasa::parallel::{ParallelConfig, ParallelEngine, QueryMethod, SketchMethod};
use tsubasa::serve::mirror_sketches_to_pile;
use tsubasa::storage::store::persist_sketchset;
use tsubasa::storage::{MemorySketchStore, PileWriter, SketchPile, SketchStore};
use tsubasa_dft::sketch::{DftSketchSet, Transform};

const WINDOWS: usize = 4;
const THETA: f64 = 0.3;
const K: usize = 5;

/// Deterministic multi-scale series; series 0 carries one NaN observation in
/// basic window 1, so the kernel's NaN-clamping convention is exercised
/// identically on every backend.
fn collection(n: usize, basic_window: usize) -> SeriesCollection {
    let len = WINDOWS * basic_window;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            (0..len)
                .map(|i| {
                    if s == 0 && i == basic_window + 1 {
                        f64::NAN
                    } else {
                        (i as f64 * 0.11 + s as f64 * 0.63).sin()
                            + ((i * (s + 2)) % 13) as f64 * 0.05
                    }
                })
                .collect()
        })
        .collect();
    SeriesCollection::from_rows(rows).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tsubasa-source-agree-{}-{tag}.pile",
        std::process::id()
    ))
}

fn engine(workers: usize) -> ParallelEngine {
    ParallelEngine::new(ParallelConfig {
        workers,
        batch_pairs: 4,
        sketch_method: SketchMethod::Dft { coefficients: 8 },
        audit_pruned_chunks: false,
    })
}

/// Run all three query kinds on `source` and compare each against the
/// single-worker in-memory reference. Returns the number of cases covered.
fn assert_source_matches<S: CorrSource + ?Sized>(
    eng: &ParallelEngine,
    source: &S,
    windows: Range<usize>,
    qm: QueryMethod,
    reference: &(CorrelationMatrix, EdgeList, TopK),
    label: &str,
) -> usize {
    let (matrix, _) = eng.query(source, windows.clone(), qm).unwrap();
    assert_eq!(matrix, reference.0, "matrix mismatch: {label}");

    let (edges, _) = eng.network(source, windows.clone(), qm, THETA).unwrap();
    assert_eq!(
        edges.edges(),
        reference.1.edges(),
        "edges mismatch: {label}"
    );
    assert_eq!(
        edges.nan_pair_count(),
        reference.1.nan_pair_count(),
        "nan audit mismatch: {label}"
    );

    let (top, _) = eng.top_k(source, windows, qm, K).unwrap();
    assert_eq!(top.edges, reference.2.edges, "top-k mismatch: {label}");
    assert_eq!(
        top.nan_pairs, reference.2.nan_pairs,
        "top-k nan audit mismatch: {label}"
    );
    3
}

/// `ParallelConfig::audit_pruned_chunks` must behave identically on every
/// backend: a NaN planted in an Equation-4-prunable chunk is silently
/// skipped with the default config and counted when the audit is on, with
/// the **same** counts from the record store and the pile — the policy lives
/// in the one shared audit hook, not per backend.
#[test]
fn pruned_chunk_nan_audit_is_identical_on_store_and_pile() {
    use tsubasa::storage::SegmentKind;

    let n = 6;
    let b = 25;
    // Engineer the Equation 4 bound (`s_i s_j + t_i t_j` with
    // `s² + t² = 1`): the last series is piecewise-constant per window (all
    // numerator mass in between-window deltas, `t ≈ 1`), the rest are
    // window-periodic (identical windows, so all mass in within-window
    // stds, `s = 1`). Every pair touching the last series then has a bound
    // near zero and deterministically prunes under any positive θ.
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            (0..WINDOWS * b)
                .map(|i| {
                    if s == n - 1 {
                        (i / b) as f64
                    } else {
                        ((i % b) * 7919 * (s + 1) % 101) as f64 * 0.01
                    }
                })
                .collect()
        })
        .collect();
    let c = SeriesCollection::from_rows(rows).unwrap();
    let dft = DftSketchSet::build(&c, b, 8, Transform::Naive).unwrap();

    // Store with a NaN distance planted for the last pair in window 2.
    let layout = ParallelEngine::layout_for(&c, b).unwrap();
    let store = Arc::new(MemorySketchStore::new(layout));
    let mut dists: Vec<Vec<f64>> = Vec::new();
    for a in 0..n {
        for bb in a + 1..n {
            dists.push(dft.pair_distances(a, bb).unwrap().to_vec());
        }
    }
    let planted_pair = dists.len() - 1; // pair (n-2, n-1)
    dists[planted_pair][2] = f64::NAN;
    persist_sketchset(&*store, dft.base(), Some(&dists)).unwrap();
    let store_src: &dyn SketchStore = &*store;

    // Pile with the same NaN planted in the window-2 estimates row.
    let path = temp_path("pruned-nan");
    let mut writer = PileWriter::create(&path, n, b).unwrap();
    let base = dft.base();
    for w in 0..WINDOWS {
        let mut stats_row = Vec::with_capacity(n * 3);
        for i in 0..n {
            let st = base.series_sketch(i).unwrap().window(w);
            stats_row.extend_from_slice(&[st.len as f64, st.mean, st.std]);
        }
        writer.append(SegmentKind::SeriesStats, &stats_row).unwrap();
        writer
            .append(
                SegmentKind::PairCorrs,
                base.window_corrs_view(w..w + 1).window_row(0),
            )
            .unwrap();
        let ests: Vec<f64> = dists
            .iter()
            .map(|d| {
                let d = d[w];
                1.0 - d * d / 2.0
            })
            .collect();
        writer.append(SegmentKind::PairEsts, &ests).unwrap();
    }
    let pile = writer.into_pile().unwrap();

    let theta = 0.9;
    let mut counts = Vec::new();
    for audit in [false, true] {
        let eng = ParallelEngine::new(ParallelConfig {
            workers: 2,
            batch_pairs: 1,
            sketch_method: SketchMethod::Dft { coefficients: 8 },
            audit_pruned_chunks: audit,
        });
        let (e_store, _) = eng
            .network(store_src, 0..WINDOWS, QueryMethod::Approximate, theta)
            .unwrap();
        let (e_pile, _) = eng
            .network(&pile, 0..WINDOWS, QueryMethod::Approximate, theta)
            .unwrap();
        assert_eq!(
            e_store.nan_pair_count(),
            e_pile.nan_pair_count(),
            "audit={audit}: store and pile must count identically"
        );
        assert_eq!(e_store.edges(), e_pile.edges(), "audit={audit}");
        counts.push(e_store.nan_pair_count());
    }
    // The planted chunk really was pruned: silent mode misses exactly the
    // planted pair, the audit observes it — and only the accounting differs.
    assert_eq!(counts[0], 0, "pruned chunk must be silent by default");
    assert_eq!(counts[1], 1, "audit must observe the pruned chunk's NaN");
    std::fs::remove_file(&path).ok();
}

#[test]
fn all_backends_agree_bit_for_bit_across_the_grid() {
    let n = 6;
    let b = 20;
    let c = collection(n, b);

    // One in-memory dual sketch is the root of every backend, so the grid
    // isolates the *serving* path: the store and pile carry the exact same
    // window values the sketch does.
    let dft = DftSketchSet::build(&c, b, 8, Transform::Naive).unwrap();

    // Record store, with both method fields persisted.
    let layout = ParallelEngine::layout_for(&c, b).unwrap();
    let store = Arc::new(MemorySketchStore::new(layout));
    let mut dists: Vec<Vec<f64>> = Vec::new();
    for a in 0..n {
        for bb in a + 1..n {
            dists.push(dft.pair_distances(a, bb).unwrap().to_vec());
        }
    }
    persist_sketchset(&*store, dft.base(), Some(&dists)).unwrap();
    let store_src: &dyn SketchStore = &*store;

    // Mapped pile with correlation and estimate rows mirrored per window.
    let path = temp_path("grid");
    let mut writer = PileWriter::create(&path, n, b).unwrap();
    mirror_sketches_to_pile(&mut writer, Some(dft.base()), Some(&dft)).unwrap();
    let pile = writer.into_pile().unwrap();

    // The same file opened with the mmap fast path disabled: queries go
    // through the heap-buffered fallback and must not change a bit. CI also
    // reruns this whole suite under an ambient TSUBASA_PILE_NO_MMAP=1, in
    // which case both opens exercise the fallback — restore, don't clear.
    let ambient = std::env::var("TSUBASA_PILE_NO_MMAP").ok();
    std::env::set_var("TSUBASA_PILE_NO_MMAP", "1");
    let pile_nommap = SketchPile::open(&path).unwrap();
    match &ambient {
        Some(v) => std::env::set_var("TSUBASA_PILE_NO_MMAP", v),
        None => std::env::remove_var("TSUBASA_PILE_NO_MMAP"),
    }
    assert!(
        pile.is_mmap() || ambient.as_deref() == Some("1"),
        "grid must exercise the mapped path unless mmap is disabled"
    );
    assert!(
        !pile_nommap.is_mmap(),
        "grid must exercise the buffered fallback path"
    );

    let mut cases = 0usize;
    for qm in [QueryMethod::Exact, QueryMethod::Approximate] {
        for windows in [0..WINDOWS, 1..WINDOWS] {
            let reference = {
                let eng = engine(1);
                let (m, _) = eng.query(&dft, windows.clone(), qm).unwrap();
                let (e, _) = eng.network(&dft, windows.clone(), qm, THETA).unwrap();
                let (t, _) = eng.top_k(&dft, windows.clone(), qm, K).unwrap();
                (m, e, t)
            };
            for workers in [1usize, 2, 8] {
                let eng = engine(workers);
                let tag = |which: &str| format!("{which} {qm:?} w={workers} {windows:?}");
                cases += assert_source_matches(
                    &eng,
                    &dft,
                    windows.clone(),
                    qm,
                    &reference,
                    &tag("memory"),
                );
                cases += assert_source_matches(
                    &eng,
                    store_src,
                    windows.clone(),
                    qm,
                    &reference,
                    &tag("store"),
                );
                cases += assert_source_matches(
                    &eng,
                    &pile,
                    windows.clone(),
                    qm,
                    &reference,
                    &tag("pile"),
                );
                cases += assert_source_matches(
                    &eng,
                    &pile_nommap,
                    windows.clone(),
                    qm,
                    &reference,
                    &tag("pile-no-mmap"),
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
    assert!(
        cases >= 64,
        "agreement grid must cover >= 64 cases, ran {cases}"
    );
}
