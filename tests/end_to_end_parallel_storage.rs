//! Workspace integration tests: the parallel + disk-based configuration —
//! partitioned sketching through the database-writer worker, sketch
//! persistence and re-hydration, and the space accounting used by the
//! Figure 6d experiment.

use std::sync::Arc;

use tsubasa::core::prelude::*;
use tsubasa::data::prelude::*;
use tsubasa::parallel::{ParallelConfig, ParallelEngine, QueryMethod, SketchMethod};
use tsubasa::storage::{
    DiskSketchStore, MemorySketchStore, PairWindowRecord, SeriesWindowRecord, SketchStore,
};
use tsubasa_storage::store::{load_sketchset, persist_sketchset};

fn grid(cells: usize, points: usize) -> SeriesCollection {
    generate_berkeley_like(&BerkeleyLikeConfig {
        cells,
        points,
        seed: 2024,
        regions: 4,
        ..BerkeleyLikeConfig::default()
    })
    .unwrap()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tsubasa-it-{}-{tag}", std::process::id()))
}

#[test]
fn parallel_disk_pipeline_matches_serial_exact_path() {
    let collection = grid(24, 720);
    let b = 120;
    let layout = ParallelEngine::layout_for(&collection, b).unwrap();
    let dir = temp_dir("pipeline");
    let store: Arc<dyn SketchStore> = Arc::new(DiskSketchStore::create(&dir, layout).unwrap());

    let engine = ParallelEngine::new(ParallelConfig {
        workers: 4,
        batch_pairs: 16,
        sketch_method: SketchMethod::Exact,
        audit_pruned_chunks: false,
    });
    let sketch_report = engine
        .sketch_to_store(&collection, b, store.clone())
        .unwrap();
    assert_eq!(sketch_report.pairs, collection.pair_count());

    let (parallel_matrix, query_report) = engine
        .query_from_store(store.clone(), 0..layout.n_windows, QueryMethod::Exact)
        .unwrap();
    assert_eq!(query_report.pairs, collection.pair_count());

    // Serial reference on the same aligned window.
    let builder =
        HistoricalBuilder::new(collection.clone(), NetworkConfig::new(b, 0.75).unwrap()).unwrap();
    let query = QueryWindow::new(layout.n_windows * b - 1, layout.n_windows * b).unwrap();
    let serial_matrix = builder.correlation_matrix(query).unwrap();
    assert!(parallel_matrix.max_abs_diff(&serial_matrix) < 1e-9);

    // The store can also re-hydrate a SketchSet that reproduces the same
    // result without raw data.
    let rehydrated = load_sketchset(store.as_ref()).unwrap();
    let from_store = exact::correlation_matrix_aligned(&rehydrated, 0..layout.n_windows).unwrap();
    assert!(from_store.max_abs_diff(&serial_matrix) < 1e-9);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_and_memory_stores_are_interchangeable() {
    let collection = grid(12, 600);
    let b = 100;
    let layout = ParallelEngine::layout_for(&collection, b).unwrap();
    let engine = ParallelEngine::new(ParallelConfig {
        workers: 3,
        batch_pairs: 8,
        sketch_method: SketchMethod::Exact,
        audit_pruned_chunks: false,
    });

    let mem: Arc<dyn SketchStore> = Arc::new(MemorySketchStore::new(layout));
    engine.sketch_to_store(&collection, b, mem.clone()).unwrap();
    let (mem_matrix, _) = engine
        .query_from_store(mem.clone(), 0..layout.n_windows, QueryMethod::Exact)
        .unwrap();

    let dir = temp_dir("interchange");
    let disk: Arc<dyn SketchStore> = Arc::new(DiskSketchStore::create(&dir, layout).unwrap());
    engine
        .sketch_to_store(&collection, b, disk.clone())
        .unwrap();
    let (disk_matrix, _) = engine
        .query_from_store(disk.clone(), 0..layout.n_windows, QueryMethod::Exact)
        .unwrap();

    assert!(mem_matrix.max_abs_diff(&disk_matrix) < 1e-12);
    // Identical layouts → identical space accounting (the paper's point that
    // both algorithms store same-size sketches holds per window).
    assert_eq!(mem.space_bytes(), disk.space_bytes());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn space_overhead_shrinks_as_basic_window_grows() {
    // The Figure 6d relationship: fewer, larger basic windows → fewer stored
    // records → smaller store.
    let collection = grid(16, 960);
    let mut previous: Option<u64> = None;
    for b in [60usize, 120, 240, 480] {
        let layout = ParallelEngine::layout_for(&collection, b).unwrap();
        let store = MemorySketchStore::new(layout);
        let expected_bytes = (layout.series_records() * SeriesWindowRecord::SIZE
            + layout.pair_records() * PairWindowRecord::SIZE) as u64;
        assert_eq!(store.space_bytes(), expected_bytes);
        if let Some(prev) = previous {
            assert!(store.space_bytes() < prev, "space must shrink as B grows");
        }
        previous = Some(store.space_bytes());
    }
}

#[test]
fn persisted_sketchset_roundtrips_with_dft_distances() {
    let collection = grid(8, 480);
    let b = 120;
    let sketch = SketchSet::build(&collection, b).unwrap();
    let dft = tsubasa::dft::sketch::DftSketchSet::build(
        &collection,
        b,
        b / 2,
        tsubasa::dft::sketch::Transform::Naive,
    )
    .unwrap();
    let dists: Vec<Vec<f64>> = collection
        .pairs()
        .map(|(i, j)| dft.pair_distances(i, j).unwrap().to_vec())
        .collect();

    let layout = ParallelEngine::layout_for(&collection, b).unwrap();
    let dir = temp_dir("dft-roundtrip");
    let store = DiskSketchStore::create(&dir, layout).unwrap();
    persist_sketchset(&store, &sketch, Some(&dists)).unwrap();

    // Correlations and distances both survive the roundtrip.
    let loaded = load_sketchset(&store).unwrap();
    assert_eq!(loaded, sketch);
    for (idx, (i, j)) in collection.pairs().enumerate() {
        let records = store.read_pair(i, j, 0..layout.n_windows).unwrap();
        for (w, r) in records.iter().enumerate() {
            assert!((r.dft_dist - dists[idx][w]).abs() < 1e-12);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partition_count_changes_throughput_not_results() {
    let collection = grid(20, 600);
    let b = 120;
    let layout = ParallelEngine::layout_for(&collection, b).unwrap();
    let mut reference: Option<CorrelationMatrix> = None;
    for workers in [1usize, 2, 6, 12] {
        let store: Arc<dyn SketchStore> = Arc::new(MemorySketchStore::new(layout));
        let engine = ParallelEngine::new(ParallelConfig {
            workers,
            batch_pairs: 4,
            sketch_method: SketchMethod::Exact,
            audit_pruned_chunks: false,
        });
        engine
            .sketch_to_store(&collection, b, store.clone())
            .unwrap();
        let (matrix, report) = engine
            .query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        assert_eq!(report.workers, workers);
        match &reference {
            None => reference = Some(matrix),
            Some(r) => assert!(r.max_abs_diff(&matrix) < 1e-12),
        }
    }
}
