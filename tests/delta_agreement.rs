//! Property suite for the delta-maintained network layer: across both
//! sliding engines, 1/2/8 workers, and randomized ingest sequences, replaying
//! the per-tick [`EdgeDelta`]s onto the subscription baseline must reproduce
//! the full re-threshold bit for bit — same edge set and the same
//! NaN-audited pair count — at a random threshold. 256 deterministic cases,
//! some with NaN observations injected mid-stream.

use tsubasa::core::prelude::*;
use tsubasa::core::runner::{JobRunner, SerialRunner};
use tsubasa::dft::sketch::{DftSketchSet, Transform};
use tsubasa::dft::SlidingApproxNetwork;
use tsubasa::parallel::WorkerPool;

/// SplitMix64: deterministic, dependency-free case generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// The shared surface of both sliding engines under test.
trait DeltaEngine {
    fn subscribe(&mut self, theta: f64) -> Result<AdjacencyMatrix>;
    fn slide(&mut self, runner: &dyn JobRunner, chunk: &[Vec<f64>]) -> Result<()>;
    fn changed(&self) -> Option<&EdgeDelta>;
    fn full_network(&self, theta: f64) -> AdjacencyMatrix;
}

impl DeltaEngine for SlidingNetwork {
    fn subscribe(&mut self, theta: f64) -> Result<AdjacencyMatrix> {
        self.subscribe_edges(theta)
    }
    fn slide(&mut self, runner: &dyn JobRunner, chunk: &[Vec<f64>]) -> Result<()> {
        self.ingest_in(runner, chunk)
    }
    fn changed(&self) -> Option<&EdgeDelta> {
        self.changed_edges()
    }
    fn full_network(&self, theta: f64) -> AdjacencyMatrix {
        self.network(theta)
    }
}

impl DeltaEngine for SlidingApproxNetwork {
    fn subscribe(&mut self, theta: f64) -> Result<AdjacencyMatrix> {
        self.subscribe_edges(theta)
    }
    fn slide(&mut self, runner: &dyn JobRunner, chunk: &[Vec<f64>]) -> Result<()> {
        self.ingest_in(runner, chunk)
    }
    fn changed(&self) -> Option<&EdgeDelta> {
        self.changed_edges()
    }
    fn full_network(&self, theta: f64) -> AdjacencyMatrix {
        self.network(theta)
    }
}

struct CaseTally {
    rechecked: usize,
    total: usize,
}

/// Drive one engine through `slides` random chunks, asserting after every
/// tick that baseline-plus-deltas equals the full re-threshold exactly.
#[allow(clippy::too_many_arguments)]
fn run_case(
    engine: &mut dyn DeltaEngine,
    runner: &dyn JobRunner,
    rng: &mut Rng,
    rows: &[Vec<f64>],
    basic: usize,
    query_len: usize,
    slides: usize,
    theta: f64,
    inject_nan: bool,
    label: &str,
) -> CaseTally {
    let mut replayed = engine.subscribe(theta).unwrap();
    let baseline = engine.full_network(theta);
    assert_eq!(replayed, baseline, "{label}: baseline mismatch");
    assert_eq!(
        replayed.nan_pair_count(),
        baseline.nan_pair_count(),
        "{label}: baseline NaN audit mismatch"
    );

    let mut tally = CaseTally {
        rechecked: 0,
        total: 0,
    };
    for s in 0..slides {
        let lo = query_len + s * basic;
        let mut chunk: Vec<Vec<f64>> = rows.iter().map(|r| r[lo..lo + basic].to_vec()).collect();
        if inject_nan && rng.unit() < 0.5 {
            // Poison one series' arriving window: the delta path must count
            // the pair as NaN-audited, never silently drop or mis-edge it.
            let series = rng.range(0, chunk.len());
            let point = rng.range(0, basic);
            chunk[series][point] = f64::NAN;
        }
        engine.slide(runner, &chunk).unwrap();

        let delta = engine
            .changed()
            .unwrap_or_else(|| panic!("{label}: subscribed engine must emit a delta per tick"))
            .clone();
        tally.rechecked += delta.rechecked_pairs;
        tally.total += delta.total_pairs;
        delta.apply_to(&mut replayed).unwrap();

        let full = engine.full_network(theta);
        assert_eq!(replayed, full, "{label}: edge set diverged at slide {s}");
        assert_eq!(
            replayed.nan_pair_count(),
            full.nan_pair_count(),
            "{label}: NaN audit diverged at slide {s}"
        );
    }
    tally
}

#[test]
fn replayed_deltas_match_full_rethreshold_256_cases() {
    let pool2 = WorkerPool::new(2);
    let pool8 = WorkerPool::new(8);
    let mut rng = Rng(0x7a5b_a5a1_d317_0001);

    let mut rechecked = 0usize;
    let mut total = 0usize;
    for case in 0..256usize {
        let n = rng.range(3, 7);
        let basic = rng.range(4, 10);
        let windows = rng.range(3, 6);
        let slides = rng.range(2, 5);
        let theta = -0.9 + 1.85 * rng.unit();
        let inject_nan = case % 4 == 0;
        let query_len = basic * windows;
        let series_len = query_len + basic * slides;

        // Mixed structure: a shared slow oscillation (per-series phase) plus
        // noise, so random thresholds land near real correlations and edges
        // both appear and vanish as the window slides.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|s| {
                let phase = rng.unit() * 3.0;
                let amp = 0.4 + rng.unit();
                (0..series_len)
                    .map(|t| {
                        amp * (t as f64 * 0.21 + phase).sin()
                            + (rng.unit() - 0.5) * 0.8
                            + s as f64 * 0.01
                    })
                    .collect()
            })
            .collect();
        let initial: Vec<Vec<f64>> = rows.iter().map(|r| r[..query_len].to_vec()).collect();
        let collection = SeriesCollection::from_rows(initial).unwrap();

        let runner: &dyn JobRunner = match case % 3 {
            0 => &SerialRunner,
            1 => &pool2,
            _ => &pool8,
        };
        let workers = runner.worker_count();

        let tally = if case % 2 == 0 {
            let sketch = SketchSet::build(&collection, basic).unwrap();
            let mut net = SlidingNetwork::initialize(&collection, &sketch, query_len).unwrap();
            run_case(
                &mut net,
                runner,
                &mut rng,
                &rows,
                basic,
                query_len,
                slides,
                theta,
                inject_nan,
                &format!("case {case} (exact, {workers} workers, theta={theta:.3})"),
            )
        } else {
            let coefficients = (basic / 2).max(1);
            let sketch =
                DftSketchSet::build(&collection, basic, coefficients, Transform::Naive).unwrap();
            let mut net = SlidingApproxNetwork::initialize(&sketch, query_len).unwrap();
            run_case(
                &mut net,
                runner,
                &mut rng,
                &rows,
                basic,
                query_len,
                slides,
                theta,
                inject_nan,
                &format!("case {case} (approx, {workers} workers, theta={theta:.3})"),
            )
        };
        rechecked += tally.rechecked;
        total += tally.total;
    }

    // The change bound must actually prune: across the whole suite, the
    // re-checked pairs are a strict subset of all maintained pairs.
    assert!(total > 0);
    assert!(
        rechecked < total,
        "change bound never certified a pair: rechecked {rechecked} of {total}"
    );
}
