//! Parallel, disk-based TSUBASA: sketch a gridded dataset into an on-disk
//! sketch store with many computation workers plus one database worker, then
//! rebuild the correlation matrix from the store — the configuration of the
//! paper's scalability experiments (Figure 6).
//!
//! ```bash
//! cargo run --release --example parallel_disk
//! ```

use std::sync::Arc;

use tsubasa::core::prelude::*;
use tsubasa::data::prelude::*;
use tsubasa::parallel::{ParallelConfig, ParallelEngine, QueryMethod, SketchMethod};
use tsubasa::storage::{DiskSketchStore, SketchStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Berkeley-Earth-like grid, scaled to laptop size.
    let collection = generate_berkeley_like(&BerkeleyLikeConfig {
        cells: 200,
        points: 1_440,
        ..BerkeleyLikeConfig::default()
    })?;
    let basic_window = 120; // the paper's scalability setting
    println!(
        "dataset: {} grid cells x {} daily points, B={basic_window}",
        collection.len(),
        collection.series_len()
    );

    let layout = ParallelEngine::layout_for(&collection, basic_window)?;
    let dir = std::env::temp_dir().join(format!("tsubasa-parallel-example-{}", std::process::id()));
    let store: Arc<dyn SketchStore> = Arc::new(DiskSketchStore::create(&dir, layout)?);

    let workers = std::thread::available_parallelism()?
        .get()
        .saturating_sub(1)
        .max(1);
    let engine = ParallelEngine::new(ParallelConfig {
        workers,
        batch_pairs: 128,
        sketch_method: SketchMethod::Exact,
        audit_pruned_chunks: false,
    });

    // --- Sketch phase: computation workers + one database writer -----------
    let report = engine.sketch_to_store(&collection, basic_window, store.clone())?;
    println!(
        "sketch: {} pairs on {} workers | compute {:?} (sum) | db write {:?} | wall {:?}",
        report.pairs, report.workers, report.compute_time, report.write_time, report.wall_time
    );
    println!(
        "sketch store size on disk: {} KiB",
        store.space_bytes() / 1024
    );

    // --- Query phase: read sketches back and build the matrix --------------
    let (matrix, qreport) =
        engine.query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)?;
    println!(
        "query:  db read {:?} (sum) | matrix calc {:?} (sum) | wall {:?}",
        qreport.read_time, qreport.compute_time, qreport.wall_time
    );
    let network = matrix.threshold(0.75)?;
    println!(
        "network @ 0.75: {} edges over {} cells",
        network.edge_count(),
        matrix.len()
    );

    // Spot-check against the brute-force baseline on the aligned window.
    let query = QueryWindow::new(
        layout.n_windows * basic_window - 1,
        layout.n_windows * basic_window,
    )?;
    let direct = baseline::correlation_matrix(&collection, query)?;
    println!(
        "max |parallel - baseline| = {:.2e}",
        matrix.max_abs_diff(&direct)
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
