//! Serve loopback: publish epochs from streaming ingest and answer network /
//! top-k queries over TCP — the full `tsubasa-serve` stack on 127.0.0.1.
//!
//! An [`EpochIngest`](tsubasa::serve::EpochIngest) folds each completed
//! basic window into a growing dual-method sketch and publishes an immutable
//! epoch snapshot; a [`QueryEngine`](tsubasa::serve::QueryEngine) answers
//! from the latest epoch through a plan cache and a worker pool; the
//! length-prefixed binary protocol carries queries and edge lists over a
//! real socket. Every response echoes the id of the epoch that answered it.
//!
//! ```bash
//! cargo run --release --example serve_loopback
//! ```

use std::sync::Arc;
use std::time::Duration;

use tsubasa::data::prelude::*;
use tsubasa::dft::sketch::Transform;
use tsubasa::parallel::WorkerPool;
use tsubasa::serve::{
    server, EpochIngest, EpochStore, Method, PlanCache, QueryEngine, ServeClient,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A year's history for 20 stations; the tail arrives as a stream.
    let config = NceaLikeConfig {
        stations: 20,
        points: 2_400,
        ..NceaLikeConfig::default()
    };
    let world = generate_ncea_like(&config)?;
    let historical = world.truncate_length(2_000)?;
    let basic_window = 100;

    // Ingest side: epoch 1 covers the history; every completed basic window
    // publishes the next immutable snapshot (exact base + DFT comparator).
    let store = Arc::new(EpochStore::new(16));
    let (mut ingest, first) = EpochIngest::dual(
        Arc::clone(&store),
        &historical,
        basic_window,
        16,
        Transform::Fft,
    )?;
    println!(
        "epoch {} published: {} series x {} basic windows",
        first.id(),
        first.series_count(),
        first.window_count()
    );

    // Serving side: plan cache + worker pool, bound to a loopback port.
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        Arc::new(PlanCache::new(32)),
        Arc::new(WorkerPool::new(2)),
    ));
    let handle = server::start(engine, "127.0.0.1:0")?;
    println!("serving on {}", handle.local_addr());

    let mut client = ServeClient::connect(handle.local_addr())?;
    client.set_read_timeout(Some(Duration::from_secs(10)))?;

    // Exact θ-network over everything, then the approximate comparator over
    // the trailing 8 windows, then the 5 strongest pairs.
    let net = client.network(Method::Exact, 0, 0.7)?;
    println!(
        "epoch {}: exact network theta=0.7 -> {} edges over {} nodes",
        net.epoch,
        net.edges.len(),
        net.nodes
    );
    let approx = client.network(Method::Approximate, 8, 0.7)?;
    println!(
        "epoch {}: approximate network (last 8 windows) -> {} edges",
        approx.epoch,
        approx.edges.len()
    );
    let top = client.top_k(Method::Exact, 0, 5)?;
    for (rank, (i, j, corr)) in top.edges.iter().enumerate() {
        println!("  #{} pair ({i}, {j}) corr {corr:.4}", rank + 1);
    }

    // Stream the remaining observations: each completed basic window
    // publishes a new epoch, and the very next query answers from it —
    // readers never block the writer.
    let updates: Vec<Vec<f64>> = world
        .iter()
        .map(|s| s.values()[2_000..2_400].to_vec())
        .collect();
    let published = ingest.ingest(&updates)?;
    println!("streamed 400 points -> {} new epochs", published.len());

    let net = client.network(Method::Exact, 0, 0.7)?;
    println!(
        "epoch {}: exact network now {} edges over {} basic windows",
        net.epoch,
        net.edges.len(),
        store.latest().map(|e| e.window_count()).unwrap_or(0)
    );

    // The repeated-window workload above answers from the plan cache.
    let stats = client.stats()?;
    println!(
        "server: {} requests on {} connections, plan cache {} hits / {} misses",
        stats.requests, stats.connections, stats.cache_hits, stats.cache_misses
    );

    drop(client);
    handle.shutdown();
    Ok(())
}
