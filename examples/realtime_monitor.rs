//! Real-time monitoring: maintain a climate network over the most recent
//! observations while new data streams in, using the exact incremental
//! updater (Lemma 2) — the paper's Algorithm 3.
//!
//! ```bash
//! cargo run --release --example realtime_monitor
//! ```

use tsubasa::core::prelude::*;
use tsubasa::data::prelude::*;
use tsubasa::stream::{RealTimeNetwork, StreamReplay, UpdateEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Full "world": one year of hourly data for 30 stations. The first 2/3 is
    // treated as already-ingested history; the rest arrives as a stream.
    let config = NceaLikeConfig {
        stations: 30,
        points: 6_000,
        ..NceaLikeConfig::default()
    };
    let world = generate_ncea_like(&config)?;
    let history_len = 4_000;
    let historical = world.truncate_length(history_len)?;

    let basic_window = 100;
    let query_len = 2_000; // the network always covers the last 2,000 hours
    let theta = 0.75;

    let mut monitor = RealTimeNetwork::new(
        &historical,
        basic_window,
        query_len,
        theta,
        UpdateEngine::Exact,
    )?;
    println!(
        "initial network over the last {query_len} points: {} edges",
        monitor.network().edge_count()
    );

    // Stream the remaining observations in 25-point deliveries (the network
    // only updates when a full basic window of 100 points has accumulated).
    let mut previous = monitor.network();
    for delivery in StreamReplay::new(&world, history_len, 25)? {
        let applied = monitor.ingest(&delivery)?;
        if applied > 0 {
            let current = monitor.network();
            let appeared = current
                .iter_edges()
                .filter(|&(i, j)| !previous.has_edge(i, j))
                .count();
            let vanished = previous
                .iter_edges()
                .filter(|&(i, j)| !current.has_edge(i, j))
                .count();
            println!(
                "t={:>5}  edges={:>4}  (+{appeared} / -{vanished})  pending={}",
                monitor.observed_points(),
                current.edge_count(),
                monitor.pending_points()
            );
            previous = current;
        }
    }

    println!(
        "stream finished after {} incremental updates; final network has {} edges",
        monitor.updates_applied(),
        monitor.network().edge_count()
    );
    Ok(())
}
