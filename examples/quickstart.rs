//! Quickstart: build a climate network from synthetic station data.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors the paper's Figure 1: ingest raw time-series, sketch
//! basic windows once, then answer query-window + threshold requests at
//! interactive speed without touching the raw data again.

use tsubasa::core::prelude::*;
use tsubasa::data::prelude::*;
use tsubasa::network::{metrics, ClimateNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a small NCEA-like station dataset (stands in for the NOAA
    //    hourly data used in the paper's in-memory experiments).
    let config = NceaLikeConfig {
        stations: 40,
        points: 4_380, // half a year of hourly data
        ..NceaLikeConfig::default()
    };
    let collection = generate_ncea_like(&config)?;
    println!(
        "dataset: {} stations x {} hourly points",
        collection.len(),
        collection.series_len()
    );

    // 2. Sketch once (Algorithm 1). Basic windows of ~one week of hours.
    let basic_window = 168;
    let builder =
        HistoricalBuilder::new(collection.clone(), NetworkConfig::new(basic_window, 0.75)?)?;
    println!(
        "sketched {} basic windows per series ({} floats total)",
        builder.sketch().window_count(),
        builder.sketch().stored_floats()
    );

    // 3. Ask for a network on an arbitrary query window: the last 1,000 hours
    //    (not a multiple of the basic window — Lemma 1 handles it exactly).
    let query = QueryWindow::latest(collection.series_len(), 1_000)?;
    let matrix = builder.correlation_matrix(query)?;
    let network = ClimateNetwork::from_matrix(&collection, &matrix, 0.75)?;
    println!(
        "network @ theta=0.75: {} edges, density {:.3}, average degree {:.2}",
        network.edge_count(),
        metrics::density(&network),
        metrics::average_degree(&network)
    );

    // 4. Re-threshold the same matrix for free (no recomputation).
    for theta in [0.6, 0.8, 0.9] {
        let net = matrix.threshold(theta)?;
        println!("  theta={theta:.1}: {} edges", net.edge_count());
    }

    // 5. Sanity check against the brute-force baseline.
    let direct = baseline::correlation_matrix(&collection, query)?;
    println!(
        "max |TSUBASA - baseline| over all pairs: {:.2e}",
        matrix.max_abs_diff(&direct)
    );
    Ok(())
}
