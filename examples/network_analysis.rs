//! Network-science analysis of a constructed climate network: components,
//! communities, clustering, teleconnections, and export — the downstream
//! tasks the paper's pipeline feeds (Figure 1).
//!
//! ```bash
//! cargo run --release --example network_analysis
//! ```

use tsubasa::core::prelude::*;
use tsubasa::data::prelude::*;
use tsubasa::network::{communities, components, export, metrics, ClimateNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A gridded dataset with built-in regional structure and an ENSO-like
    // teleconnection, so the resulting network has something to find.
    let collection = generate_berkeley_like(&BerkeleyLikeConfig {
        cells: 150,
        points: 1_095, // three years, daily
        ..BerkeleyLikeConfig::default()
    })?;
    let builder = HistoricalBuilder::new(collection.clone(), NetworkConfig::new(73, 0.6)?)?;
    let query = QueryWindow::latest(collection.series_len(), 730)?;
    let matrix = builder.correlation_matrix(query)?;
    let network = ClimateNetwork::from_matrix(&collection, &matrix, 0.6)?;

    println!(
        "network: {} nodes, {} edges, density {:.3}",
        network.node_count(),
        network.edge_count(),
        metrics::density(&network)
    );
    println!(
        "average degree {:.2}, average clustering {:.3}",
        metrics::average_degree(&network),
        metrics::average_clustering(&network)
    );
    println!(
        "teleconnections: {:.1}% of edges span more than 3,000 km",
        100.0 * metrics::long_edge_fraction(&network, 3_000.0)
    );

    let comps = components::components(&network);
    println!(
        "{} connected components; largest covers {} nodes",
        comps.len(),
        components::largest_component_size(&network)
    );

    let communities = communities::label_propagation(&network, 50);
    let groups = communities.groups();
    println!(
        "label propagation found {} communities in {} sweeps; largest sizes: {:?}",
        communities.count(),
        communities.iterations,
        groups.iter().take(5).map(|g| g.len()).collect::<Vec<_>>()
    );

    // Export artifacts for external tools.
    let out_dir = std::env::temp_dir();
    let csv_path = out_dir.join("tsubasa_network_edges.csv");
    let dot_path = out_dir.join("tsubasa_network.dot");
    std::fs::write(&csv_path, export::to_edge_list_csv(&network))?;
    std::fs::write(&dot_path, export::to_dot(&network))?;
    println!("wrote {} and {}", csv_path.display(), dot_path.display());
    Ok(())
}
