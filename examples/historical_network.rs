//! Historical-data workflow: compare TSUBASA's exact sketch-based
//! construction against the raw-data baseline and the DFT approximation on
//! the same query windows — a miniature version of the paper's Figures 5a-5c.
//!
//! ```bash
//! cargo run --release --example historical_network
//! ```

use std::time::Instant;

use tsubasa::core::prelude::*;
use tsubasa::data::prelude::*;
use tsubasa::dft::approx::{approximate_network, ApproxStrategy};
use tsubasa::dft::sketch::{DftSketchSet, Transform};
use tsubasa::network::NetworkComparison;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NceaLikeConfig {
        stations: 60,
        points: 6_000,
        ..NceaLikeConfig::default()
    };
    let collection = generate_ncea_like(&config)?;
    let basic_window = 200;
    let theta = 0.75;
    println!(
        "dataset: {} stations x {} points, B={basic_window}, theta={theta}",
        collection.len(),
        collection.series_len()
    );

    // --- Sketch phase -------------------------------------------------------
    let t = Instant::now();
    let builder =
        HistoricalBuilder::new(collection.clone(), NetworkConfig::new(basic_window, theta)?)?;
    let tsubasa_sketch_time = t.elapsed();

    let t = Instant::now();
    let dft_sketch = DftSketchSet::build(
        &collection,
        basic_window,
        basic_window * 3 / 4,
        Transform::Naive,
    )?;
    let dft_sketch_time = t.elapsed();
    println!("sketch time: TSUBASA {tsubasa_sketch_time:?}   DFT(75% coeffs) {dft_sketch_time:?}");

    // --- Query phase on aligned and arbitrary windows -----------------------
    for len in [1_000usize, 3_000, 4_321] {
        let query = QueryWindow::latest(collection.series_len(), len)?;
        let windows = builder.sketch().windowing().segment(query);

        let t = Instant::now();
        let exact_matrix = builder.correlation_matrix(query)?;
        let exact_time = t.elapsed();

        let t = Instant::now();
        let baseline_matrix = baseline::correlation_matrix(&collection, query)?;
        let baseline_time = t.elapsed();

        println!(
            "query len {len:>5} ({} full basic windows, aligned={}):",
            windows.full_count(),
            windows.is_aligned()
        );
        // The multi-threaded in-memory sweep shares one read-only QueryPlan
        // across workers and is bit-identical to the serial path.
        let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
        let t = Instant::now();
        let parallel_matrix =
            exact::correlation_matrix_parallel(&collection, builder.sketch(), query, workers)?;
        let parallel_time = t.elapsed();
        assert_eq!(parallel_matrix, exact_matrix);

        println!(
            "  TSUBASA query {exact_time:>10?}   parallel x{workers} {parallel_time:>10?}   \
             baseline {baseline_time:>10?}   max diff {:.2e}",
            exact_matrix.max_abs_diff(&baseline_matrix)
        );

        // The DFT comparator only supports aligned windows; compare networks
        // on the aligned portion.
        if windows.is_aligned() {
            let t = Instant::now();
            let approx_net = approximate_network(
                &dft_sketch,
                windows.full.clone(),
                theta,
                ApproxStrategy::Equation5,
            )?;
            let approx_time = t.elapsed();
            let exact_net = exact_matrix.threshold(theta)?;
            let cmp = NetworkComparison::compare(&exact_net, &approx_net);
            println!(
                "  DFT approx    {approx_time:>10?}   edges {} vs exact {}   D_p {:.4}   false pos {}",
                cmp.candidate_edges, cmp.reference_edges, cmp.similarity_ratio, cmp.false_positives
            );
        }
    }
    Ok(())
}
