//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses — `rand::rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open ranges
//! of `f64` and unsigned integers — on top of a SplitMix64 generator.
//! SplitMix64 passes BigCrush on its own and is more than adequate for the
//! synthetic-data generators here; determinism per seed is the property the
//! workspace actually relies on.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw a uniform sample in `[lo, hi)` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + (range.end - range.start) * unit;
        // Guard against round-up onto the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is < 2^-32 for every span this workspace uses.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Produce the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a uniform sample from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seed material, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed; the same seed always yields
    /// the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn usize_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn float_mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..50_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
