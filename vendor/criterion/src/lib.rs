//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the micro-benchmarks use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `Bencher::iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple calibrated timing loop
//! instead of criterion's statistical machinery. Good enough to smoke-run
//! and eyeball; swap in the real crate for publishable numbers.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; the stand-in runs one setup per
/// measured iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Passed to the closure given to `bench_function`; drives the timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup()` input per iteration; only the
    /// routine is measured.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

fn run_benchmark(
    group: Option<&str>,
    name: &str,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // One calibration pass sizes the measured pass to a modest budget.
    let mut calibrate = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibrate);
    let per_iter = calibrate.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(50);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, sample_size as u128) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    println!(
        "bench: {label:<50} {:>12.3} µs/iter ({iters} iters)",
        mean * 1e6
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of measured iterations for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(Some(&self.name), name, self.sample_size, &mut f);
        self
    }

    /// Finish the group (a no-op in the stand-in, present for API parity).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(None, name, 100, &mut f);
        self
    }

    /// Present for API parity with criterion's CLI handling.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export of `std::hint::black_box`, as in the real crate.
pub use std::hint::black_box;

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("probe", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 2, "calibration + measurement ran: {calls}");
    }

    #[test]
    fn groups_time_batched_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(setups >= 2);
    }
}
