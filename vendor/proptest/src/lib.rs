//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro over `arg in strategy` bindings, half-open range strategies for
//! floats and integers, [`collection::vec`], `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, deliberately accepted for an offline
//! build: no shrinking (a failing case reports its arguments via the
//! assertion message instead of a minimized input), and generation is
//! seeded deterministically from the test name (override with the
//! `PROPTEST_RNG_SEED` environment variable) rather than from an entropy
//! source, so every run explores the same cases.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic generator driving all value strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Create the generator for a named test: seeded from the test name so
    /// runs are reproducible, with `PROPTEST_RNG_SEED` as an override.
    pub fn for_test(name: &str) -> Self {
        if let Some(seed) = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            return Self::new(seed);
        }
        // FNV-1a over the test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(hash)
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = rng.below(span);
                // Lossless: `offset < span` fits the target type by construction.
                self.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy producing one fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`](fn@vec): a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Build a strategy for vectors of `element` values with a length drawn
    /// from `size` (a fixed `usize` or a `lo..hi` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped without counting.
    Reject(String),
    /// `prop_assert*!` failed; the whole property fails.
    Fail(String),
}

/// Everything needed at a `proptest!` call site.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Define property tests. Each function body runs for `cases` randomly
/// generated argument tuples; `prop_assume!` rejections are retried and
/// `prop_assert*!` failures panic with the offending arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(1024);
            while passed < config.cases {
                assert!(
                    attempts < max_attempts,
                    "proptest {}: too many rejected cases ({} passed of {} wanted after {} attempts)",
                    stringify!($name), passed, config.cases, attempts
                );
                attempts += 1;
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(message)) => panic!(
                        "proptest {} failed: {}\n  with {}",
                        stringify!($name), message, case_desc
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{}` == `{}` (left: {:?}, right: {:?})",
                        stringify!($left),
                        stringify!($right),
                        left,
                        right
                    )));
                }
            }
        }
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{}` != `{}` (both: {:?})",
                        stringify!($left),
                        stringify!($right),
                        left
                    )));
                }
            }
        }
    };
}

/// Skip the current case (without counting it) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1_000 {
            let f = (-3.0f64..5.0).generate(&mut rng);
            assert!((-3.0..5.0).contains(&f), "{f}");
            let u = (7usize..20).generate(&mut rng);
            assert!((7..20).contains(&u), "{u}");
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i), "{i}");
        }
    }

    #[test]
    fn vec_strategy_respects_length_spec() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let ranged = collection::vec(0.0f64..1.0, 2..9).generate(&mut rng);
            assert!((2..9).contains(&ranged.len()));
            let fixed = collection::vec(0u32..10, 4).generate(&mut rng);
            assert_eq!(fixed.len(), 4);
        }
    }

    #[test]
    fn for_test_is_deterministic_per_name() {
        if std::env::var("PROPTEST_RNG_SEED").is_ok() {
            return; // seed override makes every name identical by design
        }
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_counts_cases(
            x in 0u64..100,
            v in collection::vec(-1.0f64..1.0, 1..8),
        ) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0usize);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs_without_inner_attribute(seed in 0u32..10) {
            prop_assert!(seed < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_case_description() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0u32..2) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
