//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities the workspace uses, implemented on std:
//!
//! * [`thread::scope`] — crossbeam-style scoped threads (the spawn closure
//!   receives the scope, and the scope call returns a `Result` capturing
//!   panics) layered over `std::thread::scope`;
//! * [`channel::bounded`] — a bounded MPSC channel with cloneable senders,
//!   layered over `std::sync::mpsc::sync_channel`.

#![warn(missing_docs)]

/// Crossbeam-style scoped threads over `std::thread::scope`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope or a joined scoped thread: `Err` carries the panic
    /// payload, mirroring `crossbeam::thread::Result`.
    pub type Result<T> = std::thread::Result<T>;

    /// The scope handle passed to the closure and to every spawned thread.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned inside a [`scope`].
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope whose spawned threads all finish before this
    /// call returns. Returns `Err` with the panic payload if the closure or
    /// an unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Bounded MPSC channels over `std::sync::mpsc::sync_channel`.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half; cloneable so many workers can feed one receiver.
    #[derive(Debug)]
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking while the channel is full. Fails only when
        /// the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterate over values, ending when every sender is dropped.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Create a bounded channel holding at most `cap` queued values
    /// (`cap == 0` makes every send rendezvous with a receive).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_all_threads_and_returns_value() {
        let mut counter = 0u32;
        let total = thread::scope(|s| {
            let handles: Vec<_> = (0..4u32).map(|i| s.spawn(move |_| i * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        counter += total;
        assert_eq!(counter, 60);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let v = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let result = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("worker exploded") });
            h.join()
        })
        .unwrap();
        assert!(result.is_err());
    }

    #[test]
    fn bounded_channel_fans_in_from_many_senders() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let mut handles = Vec::new();
        for i in 0..3 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || tx.send(i).unwrap()));
        }
        drop(tx);
        // Drain while the senders run: with capacity 2 the third send blocks
        // until the receiver makes room, so the drain must come before join.
        let mut got: Vec<u32> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn receiver_errors_after_senders_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
