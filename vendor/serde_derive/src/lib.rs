//! Derive macros for the offline `serde` stand-in.
//!
//! Each derive emits an empty trait impl for the annotated type. Only plain
//! (non-generic) structs and enums are supported — which covers every
//! derive site in this workspace. Written against the bare `proc_macro`
//! bridge so the workspace needs neither `syn` nor `quote`.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name from a `struct` / `enum` definition token stream.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("expected a type name after `{word}`, found {other:?}"),
                }
            }
        }
    }
    panic!("derive input does not contain a struct or enum definition")
}

fn marker_impl(trait_name: &str, input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl should parse")
}

/// Derive the no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("Serialize", input)
}

/// Derive the no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("Deserialize", input)
}
