//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Buf`] / [`BufMut`] little-endian accessors the storage
//! record codec uses, implemented for `&[u8]` readers and `Vec<u8>` writers.

#![warn(missing_docs)]

/// Sequential little-endian reader over a byte source.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Consume and return the next `N` bytes.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.split_at(N);
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        *self = tail;
        out
    }
}

/// Sequential little-endian writer into a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, value: f64) {
        self.put_slice(&value.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_fields() {
        let mut buf = Vec::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f64_le(-1.5);
        buf.put_u64_le(u64::MAX - 1);
        let mut reader: &[u8] = &buf;
        assert_eq!(reader.remaining(), 20);
        assert_eq!(reader.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(reader.get_f64_le(), -1.5);
        assert_eq!(reader.get_u64_le(), u64::MAX - 1);
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn reading_past_the_end_panics() {
        let mut reader: &[u8] = &[1, 2];
        let _ = reader.get_u32_le();
    }
}
