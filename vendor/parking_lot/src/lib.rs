//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` locks behind parking_lot's non-poisoning API (guards
//! are returned directly rather than inside a `Result`). A poisoned std
//! lock — only possible after a panic while holding the guard — is
//! transparently recovered, matching parking_lot's behaviour of not
//! propagating poison.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Access the guarded value through an exclusive reference (lock-free).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock guarding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock and return the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Access the guarded value through an exclusive reference (lock-free).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len(), b.len());
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn locks_recover_from_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
