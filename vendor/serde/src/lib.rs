//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the *exact* subset of serde the workspace relies on:
//! the `Serialize` / `Deserialize` marker traits and their derive macros.
//! Nothing in the workspace performs serde-driven (de)serialization — the
//! storage layer uses hand-rolled fixed-width binary records and the bench
//! harness serializes through the `serde_json` stand-in's own `Value` type —
//! so the traits carry no methods. Replacing this with the real `serde`
//! crate is a one-line change in the root `Cargo.toml`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// Derivable via `#[derive(Serialize)]`; carries no methods because no code
/// in this workspace serializes through serde's data model.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
///
/// Derivable via `#[derive(Deserialize)]`; carries no methods because no
/// code in this workspace deserializes through serde's data model.
pub trait Deserialize {}
