//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the subset the bench harness uses: a [`Value`] tree built with
//! the [`json!`] macro and rendered with [`to_string_pretty`]. The `json!`
//! macro supports flat object literals with string-literal keys and
//! arbitrary expression values (nest by passing another `json!(...)` call as
//! the value expression), which is the only shape the workspace uses.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(v as f64)
            }
        }
    )*};
}

impl_from_num!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Error type returned by the serialization entry points.
///
/// The stand-in serializer is infallible, so this is never actually
/// constructed; it exists to keep call-site signatures source-compatible
/// with the real `serde_json`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; the real serde_json refuses to produce
        // them from f64 and emits null instead.
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Render a [`Value`] as pretty-printed JSON (two-space indent).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Build a [`Value`] from a literal, an object literal with string-literal
/// keys, or an array literal. Values are arbitrary expressions convertible
/// into [`Value`] (including nested `json!(...)` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::Value::from($value)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trip_renders_keys_in_order() {
        let v = json!({ "b": 2usize, "a": [1, 2], "s": "x\"y", "flag": true });
        let text = to_string_pretty(&v).unwrap();
        let b = text.find("\"b\"").unwrap();
        let a = text.find("\"a\"").unwrap();
        assert!(b < a, "insertion order preserved: {text}");
        assert!(text.contains("\"s\": \"x\\\"y\""));
        assert!(text.contains("\"flag\": true"));
    }

    #[test]
    fn numbers_render_integers_without_fraction() {
        assert_eq!(number_to_string(3.0), "3");
        assert_eq!(number_to_string(3.5), "3.5");
        assert_eq!(number_to_string(f64::NAN), "null");
    }

    #[test]
    fn nested_json_calls_compose() {
        let inner = json!({ "k": 1 });
        let outer = json!({ "rows": vec![inner.clone(), inner] });
        match outer {
            Value::Object(entries) => match &entries[0].1 {
                Value::Array(rows) => assert_eq!(rows.len(), 2),
                other => panic!("expected array, got {other:?}"),
            },
            other => panic!("expected object, got {other:?}"),
        }
    }
}
